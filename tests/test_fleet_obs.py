"""Fleet observability: SLO tracking, telemetry poller, /metrics, obs top,
and cross-process trace propagation over a real 2-shard cluster."""

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.obs.httpd import MetricsServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    check_cross_process,
    load_trace,
    request_ids,
    request_spans,
)
from repro.obs.slo import SLOConfig, SLOTarget, SLOTracker
from repro.obs.top import render_top
from repro.obs.trace import get_tracer
from repro.shard import RouterConfig, ShardRouter, build_cluster
from repro.shard.errors import ShardUnavailable
from repro.shard.shardmap import ShardMap
from repro.shard.telemetry import FleetTelemetry
from repro.spatial.rect import Rect


# ----------------------------------------------------------------------
# SLO tracker (pure, no processes)
# ----------------------------------------------------------------------
class TestSLOTracker:
    def test_target_validation_and_budget(self):
        assert SLOTarget(0.1).budget == pytest.approx(0.01)
        assert SLOTarget(0.1, quantile=99.9).budget == pytest.approx(0.001)
        with pytest.raises(ValueError, match="latency"):
            SLOTarget(0.0)
        with pytest.raises(ValueError, match="quantile"):
            SLOTarget(0.1, quantile=100.0)
        with pytest.raises(ValueError, match="window_seconds"):
            SLOConfig(window_seconds=0.0)

    def test_quantiles_over_recorded_latencies(self):
        slo = SLOTracker({"point": 1.0})
        for _ in range(98):
            slo.record("point", 0.001)
        slo.record("point", 0.5)
        slo.record("point", 0.5)
        q = slo.quantiles("point")
        assert q["n"] == 100
        assert q["p50"] <= 0.005  # log buckets: upper bound within 1 doubling
        assert q["p99"] >= 0.25  # rank 99 lands on the slow tail
        assert q["p999"] >= q["p99"]

    def test_burn_rate_against_budget(self):
        # p99 target: 1% budget.  5% violations => burn 5.
        slo = SLOTracker({"point": 0.01})
        for _ in range(95):
            slo.record("point", 0.001)
        for _ in range(5):
            slo.record("point", 0.1)
        assert slo.burn_rate("point") == pytest.approx(5.0)
        assert slo.burning() == ["point"]

    def test_no_target_means_quantiles_but_no_burn(self):
        slo = SLOTracker()
        slo.record("window", 0.02)
        assert slo.quantiles("window")["n"] == 1
        assert slo.burn_rate("window") == 0.0
        assert slo.burning() == []

    def test_window_expires_old_samples(self):
        slo = SLOTracker(SLOConfig(targets={"point": 0.01},
                                   window_seconds=0.2, n_slices=2))
        slo.record("point", 0.5)
        assert slo.burn_rate("point") > 0
        time.sleep(0.45)  # > window + one slice of wobble
        assert slo.quantiles("point")["n"] == 0
        assert slo.burn_rate("point") == 0.0

    def test_batch_count_weighting(self):
        slo = SLOTracker({"point": 0.01})
        slo.record("point", 0.1, count=50)
        slo.record("point", 0.001, count=50)
        assert slo.quantiles("point")["n"] == 100
        assert slo.burn_rate("point") == pytest.approx(50.0)

    def test_publish_writes_gauges(self):
        slo = SLOTracker({"point": 0.01})
        slo.record("point", 0.001)
        slo.record("update", 0.002)  # observed, untargeted
        registry = MetricsRegistry()
        slo.publish(registry)
        exported = registry.export()
        kinds = {e["labels"]["kind"] for e in exported["slo.p99_seconds"]}
        assert kinds == {"point", "update"}
        burn_kinds = {e["labels"]["kind"] for e in exported["slo.burn_rate"]}
        assert burn_kinds == {"point"}  # burn only where a target exists
        assert "slo.window_requests" in exported

    def test_snapshot_carries_targets(self):
        slo = SLOTracker({"knn": SLOTarget(0.2, quantile=99.0)})
        slo.record("knn", 0.01)
        snap = slo.snapshot()
        assert snap["knn"]["target_latency"] == 0.2
        assert snap["knn"]["burn_rate"] == 0.0


# ----------------------------------------------------------------------
# Telemetry poller against stub handles (no processes)
# ----------------------------------------------------------------------
class _ScrapeStubHandle:
    def __init__(self, shard_id, down=False):
        self.shard_id = shard_id
        self.down = down
        self.registry = MetricsRegistry()
        self.registry.counter("serve.requests_completed").inc(10 * (shard_id + 1))
        self.registry.gauge("serve.queue_depth").set(shard_id)

    def alive(self):
        return not self.down

    def request(self, command, *payload, timeout=None, trace=None):
        if self.down:
            raise ShardUnavailable("down", shard_id=self.shard_id)
        if command == "stats":
            return self.registry.export()
        if command == "status":
            return {"health": "healthy", "generation": 1,
                    "n_points": 100 * (self.shard_id + 1)}
        raise AssertionError(command)

    def close(self):
        pass


def _stub_fleet(handles, **config):
    smap = ShardMap(
        np.asarray([2**30] * (len(handles) - 1), dtype=np.uint64),
        Rect.unit(), bits=16,
    )
    return ShardRouter(smap, handles, config=RouterConfig(**config))


class TestFleetTelemetry:
    def test_interval_validation(self):
        router = _stub_fleet([_ScrapeStubHandle(0)])
        with pytest.raises(ValueError, match="interval"):
            FleetTelemetry(router, interval=0.0)
        with pytest.raises(ValueError, match="telemetry_interval"):
            RouterConfig(telemetry_interval=-1.0)

    def test_scrape_merges_and_marks_up(self):
        router = _stub_fleet([_ScrapeStubHandle(0), _ScrapeStubHandle(1)])
        telemetry = FleetTelemetry(router, interval=5.0)
        telemetry.scrape_now()
        merged = telemetry.merged()
        completed = sum(
            e["value"] for e in merged["serve.requests_completed"]
        )
        assert completed == 30  # 10 + 20, counters sum across shards
        ups = {e["labels"]["shard"]: e["value"]
               for e in merged["telemetry.shard_up"]}
        assert ups == {"0": 1.0, "1": 1.0}
        ages = [e["value"] for e in merged["telemetry.scrape_age_seconds"]]
        assert all(age < 5.0 for age in ages)

    def test_down_shard_keeps_last_export_and_ages(self):
        down = _ScrapeStubHandle(1)
        router = _stub_fleet([_ScrapeStubHandle(0), down])
        telemetry = FleetTelemetry(router, interval=5.0)
        telemetry.scrape_now()
        down.down = True
        time.sleep(0.05)
        telemetry.scrape_now()
        merged = telemetry.merged()
        ups = {e["labels"]["shard"]: e["value"]
               for e in merged["telemetry.shard_up"]}
        assert ups == {"0": 1.0, "1": 0.0}
        # History survives: shard 1's counters are still in the view.
        assert sum(
            e["value"] for e in merged["serve.requests_completed"]
        ) == 30
        ages = {e["labels"]["shard"]: e["value"]
                for e in merged["telemetry.scrape_age_seconds"]}
        assert ages["1"] > ages["0"]  # staleness grows while down
        overview = telemetry.overview()
        assert overview["overall"] == "degraded"
        assert overview["shards"][1]["health"] == "down"
        assert overview["shards"][1]["error"] == "ShardUnavailable"

    def test_never_scraped_shard_counts_as_down(self):
        router = _stub_fleet([_ScrapeStubHandle(0)])
        telemetry = FleetTelemetry(router, interval=5.0)
        overview = telemetry.overview()  # no scrape yet
        assert overview["overall"] == "down"
        merged = telemetry.merged()
        assert merged["telemetry.shard_up"][0]["value"] == 0.0

    def test_poller_thread_refreshes_and_router_uses_cache(self):
        handle = _ScrapeStubHandle(0)
        router = _stub_fleet([handle], telemetry_interval=0.05)
        try:
            assert router.telemetry is not None and router.telemetry.running
            handle.registry.counter("serve.requests_completed").inc(5)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                snap = router.stats_snapshot()
                done = sum(
                    e["value"]
                    for e in snap.get("serve.requests_completed", [])
                )
                if done == 15:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("poller never picked up the new counter value")
            assert "telemetry.scrape_age_seconds" in snap
            assert "slo.p50_seconds" in snap or True  # slo gauges join once recorded
        finally:
            router.close()
        assert not router.telemetry.running  # close() stops the poller

    def test_router_overview_without_poller_scrapes_once(self):
        router = _stub_fleet([_ScrapeStubHandle(0)])
        try:
            overview = router.overview()
            assert overview["overall"] == "healthy"
            assert overview["shards"][0]["requests_completed"] == 10.0
        finally:
            router.close()


# ----------------------------------------------------------------------
# /metrics endpoint + obs top rendering (no processes)
# ----------------------------------------------------------------------
def _fetch(url):
    with urllib.request.urlopen(url, timeout=10.0) as resp:
        return resp.status, resp.read().decode("utf-8")


class TestMetricsServer:
    def test_endpoints_serve_metrics_health_overview(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests_completed").inc(7)
        registry.gauge("telemetry.shard_up", shard=0).set(1.0)
        server = MetricsServer(
            metrics=registry.export,
            health=lambda: {"overall": "healthy", "shards": {}},
            overview=lambda: {"overall": "healthy", "n_shards": 1,
                              "shards": {}, "slo": {}},
        )
        with server:
            status, text = _fetch(server.url + "/metrics")
            assert status == 200
            assert "serve.requests_completed 7" in text
            assert 'telemetry.shard_up{shard="0"} 1' in text
            status, body = _fetch(server.url + "/metrics.json")
            assert status == 200
            assert json.loads(body)["serve.requests_completed"][0]["value"] == 7
            status, body = _fetch(server.url + "/health")
            assert status == 200
            assert json.loads(body)["overall"] == "healthy"
            status, body = _fetch(server.url + "/overview")
            assert json.loads(body)["n_shards"] == 1

    def test_down_fleet_answers_503_and_unknown_404(self):
        server = MetricsServer(
            metrics=lambda: {},
            health=lambda: {"overall": "down"},
        )
        with server:
            with pytest.raises(urllib.error.HTTPError) as e503:
                _fetch(server.url + "/health")
            assert e503.value.code == 503
            with pytest.raises(urllib.error.HTTPError) as e404:
                _fetch(server.url + "/nope")
            assert e404.value.code == 404

    def test_broken_thunk_answers_500(self):
        def boom():
            raise RuntimeError("scrape failed")

        server = MetricsServer(metrics=boom)
        with server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _fetch(server.url + "/metrics")
            assert err.value.code == 500


class TestObsTop:
    OVERVIEW = {
        "overall": "degraded",
        "n_shards": 2,
        "shards": {
            0: {"up": True, "health": "healthy", "generation": 3,
                "n_points": 1000, "requests_completed": 100.0,
                "queue_depth": 2.0, "generation_age_seconds": 1.5,
                "p99_seconds": 0.004, "cpu_seconds": 1.25,
                "scrape_age_seconds": 0.1, "error": None},
            1: {"up": False, "health": "down", "generation": None,
                "n_points": None, "requests_completed": 40.0,
                "queue_depth": 0.0, "generation_age_seconds": 0.0,
                "p99_seconds": 0.0, "cpu_seconds": 0.5,
                "scrape_age_seconds": 7.3, "error": "ShardTimeout"},
        },
        "slo": {
            "point": {"p50": 0.001, "p99": 0.004, "p999": 0.008, "n": 140,
                      "target_latency": 0.05, "target_quantile": 99.0,
                      "burn_rate": 0.25},
        },
    }

    def test_render_shows_health_staleness_and_slo(self):
        frame = render_top(self.OVERVIEW)
        assert "overall degraded" in frame
        assert "healthy" in frame
        assert "DOWN:Shar" in frame  # down marker carries the error
        assert "7.3" in frame  # the stale shard's scrape age
        assert "burn  0.25" in frame
        assert "point" in frame

    def test_qps_from_counter_deltas(self):
        prev = json.loads(json.dumps(self.OVERVIEW))  # deep copy (str keys)
        prev = {
            **prev,
            "shards": {int(k): v for k, v in prev["shards"].items()},
        }
        prev["shards"][0]["requests_completed"] = 50.0
        frame = render_top(self.OVERVIEW, prev=prev, interval=2.0)
        assert "25.0" in frame  # (100 - 50) / 2s
        first = render_top(self.OVERVIEW)  # no prev -> no qps yet
        assert first.count("-") >= 1


# ----------------------------------------------------------------------
# Cross-process tracing over a real 2-shard cluster (the tentpole)
# ----------------------------------------------------------------------
_ELSI = {"train_epochs": 30, "seed": 0}


@pytest.fixture(scope="module")
def traced_cluster(tmp_path_factory):
    directory = tmp_path_factory.mktemp("fleet-obs-cluster")
    rng = np.random.default_rng(7)
    points = rng.random((4000, 2))
    router = build_cluster(
        points,
        directory / "cluster",
        n_shards=2,
        elsi=_ELSI,
        serve={"max_wait_seconds": 0.0},
        router_config=RouterConfig(slo_targets={"point": 5.0, "knn": 5.0}),
    )
    tracer = get_tracer()
    trace_path = directory / "trace.jsonl"
    tracer.enable(path=str(trace_path))
    try:
        with router:
            hits = router.point_queries(points[:64])
            windows = router.window_queries(
                [Rect((0.1, 0.1), (0.6, 0.6)), Rect((0.0, 0.0), (0.2, 0.2))]
            )
            knn = router.knn_queries(points[:4], 3)
            router.insert(np.array([0.5, 0.5]))
            snapshot = router.stats_snapshot()
        yield {
            "hits": hits,
            "windows": windows,
            "knn": knn,
            "snapshot": snapshot,
            "records": tracer.spans(),
            "trace_path": trace_path,
        }
    finally:
        tracer.disable()
        tracer.reset()


class TestCrossProcessTracing:
    def test_queries_answered_correctly_while_traced(self, traced_cluster):
        assert traced_cluster["hits"].all()
        assert all(len(w) > 0 for w in traced_cluster["windows"])
        assert all(len(k) == 3 for k in traced_cluster["knn"])

    def test_scatter_adopts_worker_dispatch_spans(self, traced_cluster):
        records = traced_cluster["records"]
        problem = check_cross_process(records, "shard.scatter", "serve.dispatch")
        assert problem is None, problem

    def test_one_trace_id_per_request_across_processes(self, traced_cluster):
        records = traced_cluster["records"]
        rids = request_ids(records)
        assert len(rids) >= 4  # point, window, knn scatters + update
        router_pid = None
        for rid in rids:
            subset = request_spans(records, rid)
            trace_ids = {r.trace_id for r in subset}
            assert len(trace_ids) == 1  # the whole tree shares one trace
            root = subset[0]
            if root.name == "shard.scatter":
                assert root.trace_id == root.span_id
            router_pid = root.pid
        # The point scatter fans to both shards: its request tree spans
        # the router process plus at least one distinct worker pid.
        point_rid = rids[0]
        pids = {r.pid for r in request_spans(records, point_rid)}
        assert len(pids) >= 2
        assert router_pid in pids

    def test_per_shard_dispatch_children_per_contacted_shard(self, traced_cluster):
        records = traced_cluster["records"]
        scatters = [
            r for r in records
            if r.name == "shard.scatter" and r.attrs.get("kind") == "point"
        ]
        assert scatters
        scatter = scatters[0]
        dispatches = [
            r for r in records
            if r.name == "serve.dispatch"
            and r.attrs.get("request_id") == scatter.attrs.get("request_id")
        ]
        shards = {r.attrs.get("shard") for r in dispatches}
        assert shards == {0, 1}  # one adopted child per contacted shard
        for r in dispatches:
            assert r.trace_id == scatter.trace_id

    def test_slo_and_fleet_gauges_in_snapshot(self, traced_cluster):
        snapshot = traced_cluster["snapshot"]
        assert "slo.p99_seconds" in snapshot
        assert "slo.burn_rate" in snapshot
        kinds = {e["labels"]["kind"] for e in snapshot["slo.p99_seconds"]}
        assert {"point", "window", "knn", "update"} <= kinds
        assert "worker.cpu_seconds" in snapshot
        cpu_shards = {
            e["labels"]["shard"] for e in snapshot["worker.cpu_seconds"]
        }
        assert cpu_shards == {"0", "1"}

    def test_trace_file_supports_request_dump(self, traced_cluster):
        records = load_trace(str(traced_cluster["trace_path"]))
        rids = request_ids(records)
        assert rids
        subset = request_spans(records, rids[0])
        assert {r.name for r in subset} >= {"shard.scatter", "serve.dispatch"}
