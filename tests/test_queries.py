"""Unit tests for query types, workloads and recall evaluation."""

import numpy as np
import pytest

from repro.queries.evaluate import (
    brute_force_knn,
    brute_force_window,
    knn_recall,
    window_recall,
)
from repro.queries.types import KNNQuery, PointQuery, WindowQuery
from repro.queries.workload import knn_workload, point_workload, window_workload
from repro.spatial.rect import Rect


class TestTypes:
    def test_point_query_runs(self, osm_points, sp_builder):
        from repro.indices import ZMIndex

        index = ZMIndex(builder=sp_builder).build(osm_points)
        q = PointQuery(tuple(osm_points[0]))
        assert q.run(index) is True

    def test_knn_query_validation(self):
        with pytest.raises(ValueError):
            KNNQuery((0.5, 0.5), k=0)

    def test_window_query_wraps_rect(self):
        w = WindowQuery(Rect.unit(2))
        assert w.window.area() == 1.0


class TestWorkloads:
    def test_point_workload_all_points(self, osm_points):
        queries = point_workload(osm_points)
        assert len(queries) == len(osm_points)

    def test_point_workload_subsample(self, osm_points):
        queries = point_workload(osm_points, n_queries=100, seed=0)
        assert len(queries) == 100
        pts = {tuple(p) for p in osm_points}
        assert all(q.point in pts for q in queries)

    def test_window_workload_area(self, osm_points):
        queries = window_workload(osm_points, n_queries=50, area_fraction=1e-3)
        bounds = Rect.bounding(osm_points)
        for q in queries[:10]:
            assert q.window.area() == pytest.approx(bounds.area() * 1e-3, rel=1e-6)

    def test_window_workload_follows_distribution(self, osm_points):
        """Window centres are data points — dense regions get more queries."""
        queries = window_workload(osm_points, n_queries=100, seed=1)
        pts = {tuple(np.round(p, 12)) for p in osm_points}
        centers_on_data = sum(
            tuple(np.round(q.window.center, 12)) in pts for q in queries
        )
        assert centers_on_data == 100

    def test_knn_workload(self, osm_points):
        queries = knn_workload(osm_points, n_queries=30, k=25)
        assert len(queries) == 30
        assert all(q.k == 25 for q in queries)

    def test_invalid_args(self, osm_points):
        with pytest.raises(ValueError):
            point_workload(np.empty((0, 2)))
        with pytest.raises(ValueError):
            window_workload(osm_points, area_fraction=0.0)


class TestEvaluation:
    def test_brute_force_window(self):
        pts = np.array([[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]])
        got = brute_force_window(pts, Rect((0.0, 0.0), (0.6, 0.6)))
        assert len(got) == 2

    def test_brute_force_knn_order(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0], [1.0, 0.0]])
        got = brute_force_knn(pts, np.array([0.1, 0.0]), 2)
        np.testing.assert_array_equal(got[0], [0.0, 0.0])
        np.testing.assert_array_equal(got[1], [0.5, 0.0])

    def test_window_recall_perfect(self):
        truth = np.array([[0.1, 0.1], [0.2, 0.2]])
        assert window_recall(truth, truth) == 1.0

    def test_window_recall_partial(self):
        truth = np.array([[0.1, 0.1], [0.2, 0.2]])
        got = truth[:1]
        assert window_recall(got, truth) == 0.5

    def test_window_recall_empty_truth(self):
        assert window_recall(np.empty((0, 2)), np.empty((0, 2))) == 1.0

    def test_window_recall_duplicates_with_multiplicity(self):
        truth = np.array([[0.1, 0.1], [0.1, 0.1]])
        got = np.array([[0.1, 0.1]])
        assert window_recall(got, truth) == 0.5

    def test_knn_recall_perfect(self):
        pts = np.random.default_rng(0).random((100, 2))
        q = np.array([0.5, 0.5])
        truth = brute_force_knn(pts, q, 10)
        assert knn_recall(truth, pts, q, 10) == 1.0

    def test_knn_recall_degrades(self):
        pts = np.random.default_rng(1).random((100, 2))
        q = np.array([0.5, 0.5])
        far = brute_force_knn(pts, q, 50)[40:50]  # the 10 farthest of top-50
        assert knn_recall(far, pts, q, 10) < 0.5

    def test_knn_recall_empty_returned(self):
        pts = np.random.default_rng(2).random((20, 2))
        assert knn_recall(np.empty((0, 2)), pts, np.array([0.5, 0.5]), 5) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            brute_force_knn(np.zeros((3, 2)), np.zeros(2), 0)
        with pytest.raises(ValueError):
            knn_recall(np.zeros((1, 2)), np.zeros((3, 2)), np.zeros(2), 0)
