"""Morton (Z-order) space-filling curve codes in d dimensions.

The ZM index (Wang et al., MDM 2019) sorts points by their Z-values and
learns the rank function; RSMI uses SFC orderings for its recursive
partitions.  This module provides vectorised encoding/decoding between
integer grid coordinates and Morton codes, plus scaling helpers from
continuous coordinates inside a bounding :class:`~repro.spatial.rect.Rect`.

Codes use ``d * bits`` bits and are returned as ``uint64``; the default
``bits=16`` in 2-D leaves ample headroom while keeping a 2^16 grid per axis
(the paper's data sets are fractions of a unit square, so 16 bits resolve
~1.5e-5 of the space per cell).
"""

from __future__ import annotations

import numpy as np

from repro.spatial.rect import Rect

__all__ = [
    "grid_coordinates",
    "morton_decode",
    "morton_encode",
    "zvalues",
]


def _check_args(d: int, bits: int) -> None:
    if d < 1:
        raise ValueError(f"dimensionality must be >= 1, got {d}")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if d * bits > 63:
        raise ValueError(f"d * bits must be <= 63 to fit uint64, got {d * bits}")


def morton_encode(coords: np.ndarray, bits: int = 16) -> np.ndarray:
    """Interleave integer grid coordinates into Morton codes.

    Parameters
    ----------
    coords:
        Integer array of shape (n, d) with values in ``[0, 2**bits)``.
    bits:
        Bits per dimension.

    Returns
    -------
    uint64 array of n Morton codes.  Dimension 0 occupies the least
    significant bit of each ``d``-bit group, so in 2-D the code is the
    classic ``...y1x1y0x0`` interleaving.
    """
    arr = np.asarray(coords)
    if arr.ndim != 2:
        raise ValueError(f"expected an (n, d) array, got shape {arr.shape}")
    n, d = arr.shape
    _check_args(d, bits)
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    if np.any(arr < 0) or np.any(arr >= 2**bits):
        raise ValueError(f"coordinates must lie in [0, 2**{bits})")
    arr = arr.astype(np.uint64)
    codes = np.zeros(n, dtype=np.uint64)
    for bit in range(bits):
        for dim in range(d):
            codes |= ((arr[:, dim] >> np.uint64(bit)) & np.uint64(1)) << np.uint64(
                bit * d + dim
            )
    return codes


def morton_decode(codes: np.ndarray, d: int, bits: int = 16) -> np.ndarray:
    """Inverse of :func:`morton_encode`; returns an (n, d) uint64 array."""
    _check_args(d, bits)
    arr = np.asarray(codes, dtype=np.uint64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D array of codes, got shape {arr.shape}")
    out = np.zeros((len(arr), d), dtype=np.uint64)
    for bit in range(bits):
        for dim in range(d):
            out[:, dim] |= ((arr >> np.uint64(bit * d + dim)) & np.uint64(1)) << np.uint64(bit)
    return out


def grid_coordinates(points: np.ndarray, bounds: Rect, bits: int = 16) -> np.ndarray:
    """Scale continuous points in ``bounds`` to the integer grid ``[0, 2**bits)``.

    Points exactly on the upper boundary map to the last cell; points
    outside ``bounds`` are clipped (queries may extend past the data MBR).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"expected an (n, d) array, got shape {pts.shape}")
    if pts.shape[1] != bounds.ndim:
        raise ValueError(
            f"points are {pts.shape[1]}-D but bounds are {bounds.ndim}-D"
        )
    extent = bounds.extents
    extent[extent == 0.0] = 1.0  # degenerate axis: everything maps to cell 0
    scaled = (pts - bounds.lo_array) / extent
    cells = np.floor(scaled * (2**bits)).astype(np.int64)
    return np.clip(cells, 0, 2**bits - 1)


def zvalues(
    points: np.ndarray,
    bounds: Rect,
    bits: int = 16,
    dtype: np.dtype | str | None = None,
) -> np.ndarray:
    """Morton codes of continuous points: scale to the grid, then interleave.

    ``dtype`` casts the uint64 codes to a floating key dtype in one step
    (round-to-nearest, hence monotone) — the cast the map-and-sort indices
    apply before keying their stores.  float32 resolves ~2^24 distinct
    codes; collisions only widen scan ranges (bounds are re-measured over
    the cast keys), never lose points.
    """
    codes = morton_encode(grid_coordinates(points, bounds, bits), bits=bits)
    if dtype is None:
        return codes
    return codes.astype(np.dtype(dtype))
