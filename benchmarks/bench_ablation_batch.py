"""Ablation — batch vs scalar point lookups.

The predict-and-scan prediction step is a network forward pass; batching
queries amortises it (one pass for the whole batch).  This quantifies the
throughput win of `point_queries` over per-query `point_query` — relevant
to the paper's M(1) query-cost term, which is fixed per invocation.
"""

import numpy as np

from repro.bench.harness import format_table, time_call
from repro.core import ELSIModelBuilder
from repro.indices import MLIndex, ZMIndex


def test_ablation_batch_queries(ctx, benchmark):
    points = ctx.dataset("OSM1")
    batch = points[: min(ctx.scale.n_point_queries * 4, len(points))]

    def run():
        rows = []
        for cls in (ZMIndex, MLIndex):
            builder = ELSIModelBuilder(ctx.config, method="SP")
            index = cls(builder=builder).build(points)
            got, batch_seconds = time_call(index.point_queries, batch)
            assert got.all()

            def scalar():
                return np.array([index.point_query(p) for p in batch])

            ref, scalar_seconds = time_call(scalar)
            assert np.array_equal(got, ref)
            rows.append(
                {
                    "index": cls.name,
                    "batch_us": batch_seconds / len(batch) * 1e6,
                    "scalar_us": scalar_seconds / len(batch) * 1e6,
                    "speedup": scalar_seconds / max(batch_seconds, 1e-12),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["index", "batch (us/query)", "scalar (us/query)", "speedup"],
        [
            [r["index"], f"{r['batch_us']:.1f}", f"{r['scalar_us']:.1f}", f"{r['speedup']:.1f}x"]
            for r in rows
        ],
        title=f"Ablation: batch vs scalar point lookups ({len(batch)} queries)",
    ))
    for r in rows:
        assert r["speedup"] > 1.0, r
