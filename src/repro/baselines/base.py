"""Shared query API for traditional spatial indices.

Mirrors :class:`repro.indices.base.LearnedSpatialIndex` (build + the three
query kinds) so experiments can sweep over learned and traditional indices
with one code path.  Traditional indices are exact; they also record a
simple build-time figure for Figure 8.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod

import numpy as np

from repro.spatial.rect import Rect

__all__ = ["TraditionalIndex", "knn_from_candidates"]


def knn_from_candidates(candidates: np.ndarray, point: np.ndarray, k: int) -> np.ndarray:
    """The k candidates nearest to ``point`` (all of them if fewer than k)."""
    if len(candidates) == 0:
        return candidates
    q = np.asarray(point, dtype=np.float64)
    diff = candidates - q
    dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    order = np.argsort(dist, kind="stable")
    return candidates[order[: min(k, len(order))]]


class TraditionalIndex(ABC):
    """Build + point/window/kNN query API for the competitor indices."""

    name: str = "traditional"

    def __init__(self, block_size: int = 100) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self.bounds: Rect | None = None
        self.n_points = 0
        self.build_seconds = 0.0

    @abstractmethod
    def build(self, points: np.ndarray) -> "TraditionalIndex":
        """Index ``points``; returns self for chaining."""

    @abstractmethod
    def point_query(self, point: np.ndarray) -> bool:
        """Whether ``point`` (exact coordinates) is indexed."""

    @abstractmethod
    def window_query(self, window: Rect) -> np.ndarray:
        """All indexed points inside ``window`` (exact)."""

    @abstractmethod
    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        """The k nearest indexed points to ``point`` (exact)."""

    # ------------------------------------------------------------------
    def _check_built(self) -> None:
        if self.bounds is None:
            raise RuntimeError(f"{self.name} index is not built yet")

    @staticmethod
    def _prepare_points(points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("need a non-empty (n, d) array of points")
        if pts.shape[1] < 2:
            raise ValueError("spatial indices need d >= 2")
        return pts


class BestFirstKNN:
    """Best-first kNN over (MINDIST, node) entries — shared by the R-trees.

    Callers push the root, then repeatedly pop: nodes expand into children,
    leaves yield candidate points.  The search is exact because entries are
    popped in MINDIST order and points are returned only once their distance
    beats every remaining bound.
    """

    def __init__(self, point: np.ndarray, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.q = np.asarray(point, dtype=np.float64)
        self.k = k
        self._heap: list[tuple[float, int, object]] = []
        self._counter = 0
        self._results: list[tuple[float, np.ndarray]] = []

    def push(self, min_dist_sq: float, payload: object) -> None:
        heapq.heappush(self._heap, (min_dist_sq, self._counter, payload))
        self._counter += 1

    def push_points(self, points: np.ndarray) -> None:
        """Offer candidate points (kept if they can still make the top k)."""
        diff = points - self.q
        dist_sq = np.einsum("ij,ij->i", diff, diff)
        for i in np.argsort(dist_sq, kind="stable"):
            d = float(dist_sq[i])
            if len(self._results) < self.k:
                self._results.append((d, points[i]))
                self._results.sort(key=lambda t: t[0])
            elif d < self._results[-1][0]:
                self._results[-1] = (d, points[i])
                self._results.sort(key=lambda t: t[0])

    def pop(self) -> object | None:
        """Next node to expand, or None when the search is provably done."""
        while self._heap:
            bound, _c, payload = self._heap[0]
            if len(self._results) >= self.k and bound >= self._results[-1][0]:
                return None
            heapq.heappop(self._heap)
            return payload
        return None

    def results(self) -> np.ndarray:
        if not self._results:
            return np.empty((0, len(self.q)))
        return np.vstack([p for _d, p in self._results])
