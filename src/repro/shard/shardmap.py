"""The shard map: contiguous space-filling-curve key ranges, one per shard.

Following LiLIS (see PAPERS.md), the keyspace is the image of the data
under a space-filling curve — Morton/Z-order by default, Hilbert as an
alternative — and each shard owns one contiguous code range.  Boundaries
are chosen by **rank quantiles** over the mapped keys of the build data
(so shards hold equal point counts, not equal key-space volume, which
matters on skewed data) and then snapped to positions where adjacent
sorted keys differ, so duplicate codes never straddle a cut: routing by
``searchsorted`` stays consistent with the partition actually built.

Routing rules (all conservative, never lossy):

- **point** → the single shard whose range contains the point's code;
- **window** → every shard whose range overlaps ``[code(lo), code(hi)]``.
  Morton codes are monotone in each coordinate (spreading bits preserves
  order and the per-dimension bit positions are disjoint), so every
  point inside the rect has a code inside that corner interval — shards
  outside it provably hold nothing of interest.  Hilbert codes have no
  such corner-interval property, so with ``curve="hilbert"`` window (and
  kNN round-two) routing broadcasts to all shards — correct, just
  unpruned;
- **kNN** → round one asks the point's home shard, round two widens to
  the shards overlapping the interval of the ball's bounding rect (see
  :meth:`ShardMap.shards_for_ball`).

The map is persisted as ``shard_map.json`` next to the per-shard
directories and reloaded verbatim on cluster reopen — boundaries are part
of the durable state, not recomputed.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.spatial.hilbert import hilbert_values
from repro.spatial.rect import Rect
from repro.spatial.zcurve import zvalues

__all__ = ["CURVES", "ShardMap"]

CURVES = ("zorder", "hilbert")

_MAP_VERSION = 1


class ShardMap:
    """N contiguous curve-code ranges and the routing arithmetic over them.

    ``boundaries`` holds N-1 uint64 codes; shard ``i`` owns the half-open
    code range ``[boundaries[i-1], boundaries[i])`` (with 0 and 2^63
    implied at the ends), so ``searchsorted(boundaries, code,
    side="right")`` is the owning shard.
    """

    def __init__(
        self,
        boundaries: np.ndarray,
        bounds: Rect,
        curve: str = "zorder",
        bits: int = 16,
    ) -> None:
        if curve not in CURVES:
            raise ValueError(f"curve must be one of {CURVES}, got {curve!r}")
        self.boundaries = np.asarray(boundaries, dtype=np.uint64)
        if np.any(np.diff(self.boundaries.astype(np.int64)) <= 0):
            raise ValueError("shard boundaries must be strictly increasing")
        self.bounds = bounds
        self.curve = curve
        self.bits = int(bits)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        points: np.ndarray,
        n_shards: int,
        bounds: Rect | None = None,
        curve: str = "zorder",
        bits: int = 16,
    ) -> "ShardMap":
        """Rank-quantile boundaries over the mapped keys of ``points``.

        Each cut lands at rank ``i * n / n_shards`` and is then snapped
        forward to the next position where the sorted key changes (so a
        run of equal codes stays whole in one shard).  Raises when the
        data has too few distinct codes to support ``n_shards`` non-empty
        shards — lower ``n_shards`` or raise ``bits``.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or len(pts) == 0:
            raise ValueError(f"need a non-empty (n, d) array, got shape {pts.shape}")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if bounds is None:
            bounds = Rect.bounding(pts)
        if n_shards == 1:
            return cls(np.empty(0, dtype=np.uint64), bounds, curve=curve, bits=bits)
        keys = np.sort(cls._encode(pts, bounds, curve, bits))
        n = len(keys)
        if n < n_shards:
            raise ValueError(
                f"cannot cut {n} keys into {n_shards} non-empty shards; "
                "lower n_shards"
            )
        boundaries: list[int] = []
        for i in range(1, n_shards):
            # n >= n_shards guarantees cut >= 1, so shard 0 is non-empty.
            cut = i * n // n_shards
            # Snap forward past any run of equal keys so the boundary key
            # is the *first* key of the next shard, never mid-run.
            while cut < n and keys[cut] == keys[cut - 1]:
                cut += 1
            if cut >= n:
                raise ValueError(
                    f"cannot cut {n} keys ({len(np.unique(keys))} distinct) "
                    f"into {n_shards} non-empty shards; lower n_shards or "
                    f"raise bits"
                )
            boundaries.append(int(keys[cut]))
        if len(set(boundaries)) != len(boundaries):
            raise ValueError(
                f"duplicate shard boundaries at n_shards={n_shards}: the key "
                "distribution is too concentrated; lower n_shards or raise bits"
            )
        return cls(
            np.asarray(boundaries, dtype=np.uint64), bounds, curve=curve, bits=bits
        )

    @staticmethod
    def _encode(
        points: np.ndarray, bounds: Rect, curve: str, bits: int
    ) -> np.ndarray:
        if curve == "hilbert":
            return hilbert_values(points, bounds, bits=bits)
        return zvalues(points, bounds, bits=bits)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.boundaries) + 1

    def keys_of(self, points: np.ndarray) -> np.ndarray:
        """Curve codes of ``points`` (clipped into the map's bounds)."""
        return self._encode(
            np.atleast_2d(np.asarray(points, dtype=np.float64)),
            self.bounds,
            self.curve,
            self.bits,
        )

    def shard_of_points(self, points: np.ndarray) -> np.ndarray:
        """Owning shard id per point row."""
        return np.searchsorted(self.boundaries, self.keys_of(points), side="right")

    def shard_range(self, code_lo: int, code_hi: int) -> range:
        """Shards whose ranges overlap the closed code interval."""
        first = int(np.searchsorted(self.boundaries, np.uint64(code_lo), side="right"))
        last = int(np.searchsorted(self.boundaries, np.uint64(code_hi), side="right"))
        return range(first, last + 1)

    def shards_for_window(self, window: Rect) -> range:
        """Shards a window query must visit.

        Z-order: the corner-code interval ``[code(lo), code(hi)]`` covers
        every point in the rect (Morton monotonicity), so only shards
        overlapping it are visited.  Hilbert: all shards (no corner
        interval exists).
        """
        if self.curve != "zorder":
            return range(self.n_shards)
        corners = np.stack([window.lo_array, window.hi_array])
        lo, hi = self.keys_of(corners)
        return self.shard_range(int(lo), int(hi))

    def shards_for_ball(self, center: np.ndarray, radius: float) -> range:
        """Shards that can contain a point within ``radius`` of ``center``
        (the kNN round-two candidate set; ``inf`` means every shard)."""
        if self.curve != "zorder" or not np.isfinite(radius):
            return range(self.n_shards)
        q = np.asarray(center, dtype=np.float64)
        ball = Rect.from_arrays(q - radius, q + radius)
        return self.shards_for_window(ball)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": _MAP_VERSION,
            "curve": self.curve,
            "bits": self.bits,
            "n_shards": self.n_shards,
            "bounds": {
                "lo": self.bounds.lo_array.tolist(),
                "hi": self.bounds.hi_array.tolist(),
            },
            "boundaries": [int(b) for b in self.boundaries],
        }

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        tmp.replace(path)
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "ShardMap":
        if data.get("version") != _MAP_VERSION:
            raise ValueError(
                f"unsupported shard map version {data.get('version')!r} "
                f"(this build reads version {_MAP_VERSION})"
            )
        bounds = Rect.from_arrays(
            np.asarray(data["bounds"]["lo"], dtype=np.float64),
            np.asarray(data["bounds"]["hi"], dtype=np.float64),
        )
        smap = cls(
            np.asarray(data["boundaries"], dtype=np.uint64),
            bounds,
            curve=data["curve"],
            bits=int(data["bits"]),
        )
        if smap.n_shards != int(data["n_shards"]):
            raise ValueError(
                f"shard map is inconsistent: {len(smap.boundaries)} boundaries "
                f"but n_shards={data['n_shards']}"
            )
        return smap

    @classmethod
    def load(cls, path: "str | Path") -> "ShardMap":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ShardMap(n_shards={self.n_shards}, curve={self.curve!r}, "
            f"bits={self.bits})"
        )
