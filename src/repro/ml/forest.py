"""Random forests (bagged CART trees) for the Figure 6(b) selector baselines.

RFR (regression) averages tree predictions; RFC (classification) averages
class-probability vectors.  Both use bootstrap resampling and per-split
feature subsampling (sqrt of the feature count by default), matching the
standard Breiman construction that scikit-learn implements.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestClassifier", "RandomForestRegressor"]


class _BaseForest:
    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 12,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees: list = []

    def _make_tree(self, max_features: int, seed: int):  # pragma: no cover
        raise NotImplementedError

    def fit(self, x: np.ndarray, y: np.ndarray) -> "_BaseForest":
        """Fit ``n_estimators`` trees on bootstrap resamples of (x, y)."""
        x2 = np.asarray(x, dtype=np.float64)
        if x2.ndim == 1:
            x2 = x2[:, None]
        y2 = np.asarray(y)
        if len(x2) == 0:
            raise ValueError("cannot fit a forest on an empty data set")
        n, n_features = x2.shape
        max_features = self.max_features or max(1, int(np.sqrt(n_features)))
        rng = np.random.default_rng(self.seed)
        self.trees = []
        for i in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)
            tree = self._make_tree(max_features, seed=self.seed + i + 1)
            tree.fit(x2[idx], y2[idx])
            self.trees.append(tree)
        return self

    def _check_fitted(self) -> None:
        if not self.trees:
            raise RuntimeError("forest is not fitted")


class RandomForestRegressor(_BaseForest):
    """Bagging ensemble of :class:`DecisionTreeRegressor` (RFR in Fig. 6b)."""

    def _make_tree(self, max_features: int, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=max_features,
            seed=seed,
        )

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Mean of per-tree predictions."""
        self._check_fitted()
        return np.mean([tree.predict(x) for tree in self.trees], axis=0)


class RandomForestClassifier(_BaseForest):
    """Bagging ensemble of :class:`DecisionTreeClassifier` (RFC in Fig. 6b)."""

    def _make_tree(self, max_features: int, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=max_features,
            seed=seed,
        )

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        y2 = np.asarray(y)
        self.classes_ = np.unique(y2)
        super().fit(x, y2)
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Average of per-tree class-probability vectors over ``classes_``."""
        self._check_fitted()
        # Trees may see different class subsets in their bootstrap samples;
        # align every tree's probabilities to the forest-level class list.
        x2 = np.asarray(x, dtype=np.float64)
        if x2.ndim == 1:
            x2 = x2[:, None]
        total = np.zeros((len(x2), len(self.classes_)))
        class_pos = {c: i for i, c in enumerate(self.classes_.tolist())}
        for tree in self.trees:
            proba = tree.predict_proba(x2)
            for j, c in enumerate(tree.classes_.tolist()):
                total[:, class_pos[c]] += proba[:, j]
        return total / len(self.trees)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most likely class under the averaged probabilities."""
        proba = self.predict_proba(x)
        return self.classes_[np.argmax(proba, axis=1)]
