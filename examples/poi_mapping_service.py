"""A digital-mapping service over OSM-like points of interest.

The paper's introduction motivates learned spatial indices with map
applications: "find all Points of Interest (PoIs) in the region of space
covered by a user's screen (a window query)".  This example simulates such
a service:

1. ingest a continent-scale PoI extract (OSM-like synthetic data),
2. build a LISA index through ELSI — the configuration that beat even the
   traditional indices' build times in the paper's Figure 8,
3. serve a pan-and-zoom session: a user drags the viewport across a dense
   city and zooms in, issuing one window query per frame,
4. compare latency and results against an R*-tree (RR*), the traditional
   index with the paper's best query performance.

Run:  python examples/poi_mapping_service.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ELSIConfig, LISAIndex, RStarIndex
from repro.core.build_processor import ELSIModelBuilder
from repro.data import load_dataset
from repro.queries.evaluate import brute_force_window, window_recall
from repro.spatial.rect import Rect

N_POIS = 30_000
FRAMES = 40


def simulate_session(rng: np.random.Generator) -> list[Rect]:
    """A pan-then-zoom trajectory of screen viewports."""
    viewports = []
    center = np.array([0.35, 0.55])
    size = 0.12
    for frame in range(FRAMES):
        if frame < FRAMES // 2:
            center = center + rng.normal(0.004, 0.002, 2)  # panning
        else:
            size *= 0.93  # zooming in
        viewports.append(Rect.centered(np.clip(center, 0.1, 0.9), size))
    return viewports


def main() -> None:
    rng = np.random.default_rng(7)
    print(f"Ingesting {N_POIS:,} PoIs (OSM-like extract) ...")
    pois = load_dataset("OSM1", N_POIS)

    print("Building indices:")
    config = ELSIConfig(lam=0.8, train_epochs=300)
    started = time.perf_counter()
    lisa = LISAIndex(builder=ELSIModelBuilder(config, method="SP"))
    lisa.build(pois)
    print(f"  LISA-F (ELSI, SP):  {time.perf_counter() - started:6.2f}s")

    started = time.perf_counter()
    rstar = RStarIndex()
    rstar.build(pois)
    print(f"  RR* (traditional):  {time.perf_counter() - started:6.2f}s")

    print(f"\nServing a {FRAMES}-frame pan-and-zoom session:")
    viewports = simulate_session(rng)
    for label, index in (("LISA-F", lisa), ("RR*", rstar)):
        started = time.perf_counter()
        counts = [len(index.window_query(v)) for v in viewports]
        per_frame = (time.perf_counter() - started) / FRAMES * 1e3
        print(f"  {label:<7} {per_frame:6.2f} ms/frame, "
              f"{counts[0]} PoIs on the first screen, {counts[-1]} on the last")

    # Quality check on a sample of frames: LISA's FFN shard predictor makes
    # windows approximate (Section VII-B1); recall should still be high.
    recalls = []
    for viewport in viewports[::5]:
        got = lisa.window_query(viewport)
        truth = brute_force_window(pois, viewport)
        recalls.append(window_recall(got, truth))
    print(f"\nLISA-F window recall over the session: "
          f"mean {np.mean(recalls):.3f}, min {np.min(recalls):.3f} "
          f"(paper: stays above ~0.92)")

    # Nearby-PoIs feature: k nearest to the final viewport centre.
    center = viewports[-1].center
    knn = lisa.knn_query(center, k=10)
    print(f"\n10 PoIs nearest to the final viewport centre {np.round(center, 3)}:")
    for p in knn[:5]:
        print(f"  ({p[0]:.4f}, {p[1]:.4f})  dist={np.linalg.norm(p - center):.4f}")
    print("  ...")


if __name__ == "__main__":
    main()
