"""Tests for the piecewise-linear model and the PGM-style builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.indices import PGMBuilder, ZMIndex
from repro.indices.base import BuildStats
from repro.ml.pla import PiecewiseLinearModel, fit_pla


class TestFitPLA:
    def test_line_needs_one_segment(self):
        x = np.linspace(0, 1, 100)
        model = fit_pla(x, 2 * x + 1, epsilon=0.01)
        assert model.n_segments == 1
        np.testing.assert_allclose(model.predict(x), 2 * x + 1, atol=0.01)

    def test_error_bound_holds(self):
        rng = np.random.default_rng(0)
        x = np.sort(rng.random(500))
        y = np.cumsum(rng.random(500))
        y = y / y[-1]
        for eps in (0.05, 0.01, 0.002):
            model = fit_pla(x, y, eps)
            err = np.abs(model.predict(x) - y).max()
            assert err <= eps + 1e-12

    def test_smaller_epsilon_more_segments(self):
        rng = np.random.default_rng(1)
        x = np.sort(rng.random(1_000))
        y = np.arange(1_000) / 999
        loose = fit_pla(x, y, 0.05).n_segments
        tight = fit_pla(x, y, 0.002).n_segments
        assert tight >= loose

    def test_step_function(self):
        x = np.linspace(0, 1, 100)
        y = (x > 0.5).astype(float)
        model = fit_pla(x, y, epsilon=0.01)
        assert model.n_segments >= 2
        assert abs(model.predict(np.array([0.1]))[0]) <= 0.011

    def test_single_point(self):
        model = fit_pla(np.array([0.5]), np.array([0.7]), 0.1)
        assert model.predict(np.array([0.5]))[0] == pytest.approx(0.7)

    def test_2d_input_accepted(self):
        x = np.linspace(0, 1, 10)
        model = fit_pla(x, x, 0.1)
        out = model.predict(x[:, None])
        assert out.shape == (10,)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            fit_pla(np.array([1.0, 0.0]), np.array([0.0, 1.0]), 0.1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            fit_pla(np.empty(0), np.empty(0), 0.1)
        with pytest.raises(ValueError):
            fit_pla(np.zeros(2), np.zeros(3), 0.1)
        with pytest.raises(ValueError):
            fit_pla(np.zeros(2), np.zeros(2), 0.0)

    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(2, 120),
            elements=st.floats(0.0, 1.0, allow_nan=False),
        ),
        st.floats(0.005, 0.2),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_bound_distinct_keys(self, raw, eps):
        """For distinct sorted keys the epsilon guarantee always holds."""
        x = np.unique(raw)
        if len(x) < 2:
            return
        y = np.arange(len(x)) / (len(x) - 1)
        model = fit_pla(x, y, eps)
        assert np.abs(model.predict(x) - y).max() <= eps + 1e-12


class TestPGMBuilder:
    def _sorted_partition(self, n=2_000, seed=0, duplicates=False):
        rng = np.random.default_rng(seed)
        keys = np.sort(rng.random(n) ** 2)
        if duplicates:
            keys[100:200] = keys[100]  # a 100-long duplicate run
            keys = np.sort(keys)
        pts = np.column_stack([keys, keys])
        return keys, pts

    def test_bounds_contain_every_key(self):
        keys, pts = self._sorted_partition()
        model = PGMBuilder(epsilon_positions=16).build_model(keys, pts, BuildStats())
        predicted = model.predict_positions(keys)
        deviation = np.abs(predicted - np.arange(len(keys)))
        assert deviation.max() <= model.err_l
        for i in range(0, len(keys), 131):
            lo, hi = model.search_range(keys[i])
            assert lo <= i < hi

    def test_bounds_hold_with_duplicate_runs(self):
        keys, pts = self._sorted_partition(duplicates=True)
        model = PGMBuilder(epsilon_positions=16).build_model(keys, pts, BuildStats())
        predicted = model.predict_positions(keys)
        deviation = np.abs(predicted - np.arange(len(keys)))
        assert deviation.max() <= model.err_l

    def test_declared_bound_formula(self):
        keys, pts = self._sorted_partition()
        model = PGMBuilder(epsilon_positions=32).build_model(keys, pts, BuildStats())
        assert model.err_l == 32 + 1 + 0  # distinct keys: no duplicate slack
        assert model.err_u == model.err_l

    def test_no_error_bound_measurement_pass(self):
        """PGM's bounds come from construction: no M(n) prediction pass."""
        keys, pts = self._sorted_partition()
        stats = BuildStats()
        PGMBuilder(epsilon_positions=16).build_model(keys, pts, stats)
        assert stats.error_bound_seconds == 0.0

    def test_integrates_with_zm(self, osm_points):
        index = ZMIndex(builder=PGMBuilder(epsilon_positions=32)).build(osm_points)
        assert all(index.point_query(p) for p in osm_points[::50])
        assert "PGM" in index.build_stats.methods_used

    def test_tighter_epsilon_tighter_scans(self, osm_points):
        wide = ZMIndex(builder=PGMBuilder(epsilon_positions=128)).build(osm_points)
        tight = ZMIndex(builder=PGMBuilder(epsilon_positions=8)).build(osm_points)
        assert tight.error_width < wide.error_width

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            PGMBuilder(epsilon_positions=0)

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            PGMBuilder().build_model(np.empty(0), np.empty((0, 2)), BuildStats())
