"""LISA (Li et al., SIGMOD 2020): grid mapping + learned shard prediction.

LISA partitions the data space with a grid derived from the data (per-axis
quantile boundaries — this data dependence is why the CL and RL build
methods do not apply to LISA: they may produce points not in ``D``), maps
each point to a one-dimensional value via a *weighted aggregation of its
coordinates* within its cell, and learns a shard-prediction function from
mapped values to shard IDs.  Points are stored in mapped-value order as
fixed-size pages (shards).

Following Section VII-B1, the shard predictor here is an FFN rather than
LISA's original piecewise-linear functions; the FFN is not monotone, which
"impacts the accuracy of window queries" — reproduced here as sub-100 %
window recall.
"""

from __future__ import annotations

import time

import numpy as np

from repro.indices.base import LearnedSpatialIndex, ModelBuilder
from repro.indices.rmi import RMIModel
from repro.obs.query_obs import record_range_widths
from repro.obs.trace import span as _span
from repro.perf.batching import batch_point_membership, batch_window_refine
from repro.perf.batching import merge_ranges as batching_merge_ranges
from repro.spatial.rect import Rect
from repro.storage.blocks import BlockStore

__all__ = ["LISAIndex"]


class LISAIndex(LearnedSpatialIndex):
    """The LISA learned spatial index (2-D).

    Parameters
    ----------
    grid_size:
        Cells per axis of the quantile grid.
    shard_size:
        Points per shard (page); scans are shard-aligned.
    """

    name = "LISA"

    def __init__(
        self,
        builder: ModelBuilder | None = None,
        block_size: int = 100,
        grid_size: int = 16,
        shard_size: int = 100,
    ) -> None:
        super().__init__(builder, block_size)
        if grid_size < 1:
            raise ValueError(f"grid_size must be >= 1, got {grid_size}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        self.grid_size = grid_size
        self.shard_size = shard_size
        self._boundaries: list[np.ndarray] | None = None  # per-axis cell edges
        self._weights: np.ndarray | None = None
        self.store: BlockStore | None = None
        self.model: RMIModel | None = None
        #: Built-in insertions since the build (LISA adds points to pages
        #: by predicted shard ID; pages overflow and scans lengthen).
        self._native_inserts = 0

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def _fit_grid(self, points: np.ndarray) -> None:
        """Quantile cell boundaries per axis, from the data (LISA's grid)."""
        d = points.shape[1]
        quantiles = np.linspace(0.0, 1.0, self.grid_size + 1)[1:-1]
        self._boundaries = [
            np.quantile(points[:, dim], quantiles) for dim in range(d)
        ]
        # Weighted aggregation: dimension 0 dominates so the mapping is
        # lexicographic-ish within a cell, per LISA's Lebesgue-measure idea.
        raw = np.array([2.0 ** -(dim + 1) for dim in range(d)])
        self._weights = raw / raw.sum()

    def _cell_indices(self, points: np.ndarray) -> np.ndarray:
        """(n, d) integer cell coordinates on the quantile grid."""
        assert self._boundaries is not None
        cols = [
            np.searchsorted(self._boundaries[dim], points[:, dim], side="right")
            for dim in range(points.shape[1])
        ]
        return np.column_stack(cols)

    def map(self, points: np.ndarray) -> np.ndarray:
        """LISA's mapped value: cell ID plus the weighted in-cell offset."""
        if self._boundaries is None or self.bounds is None:
            raise RuntimeError("LISA index is not built yet")
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim == 1:
            pts = pts[None, :]
        cells = self._cell_indices(pts)
        d = pts.shape[1]
        # Row-major cell id (dimension 0 is the most significant digit).
        cell_id = np.zeros(len(pts), dtype=np.float64)
        for dim in range(d):
            cell_id = cell_id * self.grid_size + cells[:, dim]
        offsets = self._in_cell_offset(pts, cells)
        # Cast to the configured key dtype so build-time store keys and
        # query-time probes share one (monotone) quantisation.
        return (cell_id + offsets).astype(self.key_dtype, copy=False)

    def _cell_edges(self, cells: np.ndarray, dim: int) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper coordinate of each point's cell along ``dim``."""
        assert self._boundaries is not None and self.bounds is not None
        edges = np.concatenate(
            [
                [self.bounds.lo[dim] - 1e-9],
                self._boundaries[dim],
                [self.bounds.hi[dim] + 1e-9],
            ]
        )
        idx = np.clip(cells[:, dim], 0, self.grid_size - 1)
        return edges[idx], edges[idx + 1]

    def _in_cell_offset(self, pts: np.ndarray, cells: np.ndarray) -> np.ndarray:
        """Weighted aggregation of per-axis fractions within the cell, in [0, 1)."""
        assert self._weights is not None
        offset = np.zeros(len(pts))
        for dim in range(pts.shape[1]):
            lo, hi = self._cell_edges(cells, dim)
            span = np.maximum(hi - lo, 1e-12)
            frac = np.clip((pts[:, dim] - lo) / span, 0.0, 1.0 - 1e-12)
            offset += self._weights[dim] * frac
        return offset

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, points: np.ndarray) -> "LISAIndex":
        pts = self._prepare_points(points)
        started = time.perf_counter()
        self.bounds = Rect.bounding(pts)
        self.n_points = len(pts)
        self._fit_grid(pts)
        keys = self.map(pts)
        self.store = BlockStore(pts, keys, block_size=self.block_size)
        self.build_stats.prepare_seconds += time.perf_counter() - started

        self.model = RMIModel(self.builder, branching=1)
        # LISA's mapping is derived from D (the quantile grid), so build
        # methods that synthesise new points cannot be used: no map_fn.
        self.model.fit(self.store.keys, self.store.points, self.build_stats)
        return self

    def insert(self, point: np.ndarray) -> None:
        self._check_built()
        assert self.store is not None
        q = np.asarray(point, dtype=np.float64)
        key = float(self.map(q)[0])
        self.store.insert(q, key)
        self._native_inserts += 1
        self.n_points += 1

    def _shard_aligned(self, lo: int, hi: int) -> tuple[int, int]:
        """Widen a position range to whole shards (pages are the scan unit),
        padded by the built-in-insert count to keep scans correct."""
        lo -= self._native_inserts
        hi += self._native_inserts
        lo = (lo // self.shard_size) * self.shard_size
        hi = -(-hi // self.shard_size) * self.shard_size
        return max(0, lo), min(self.n_points, hi)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def point_query(self, point: np.ndarray) -> bool:
        self._check_built()
        assert self.store is not None and self.model is not None
        q = np.asarray(point, dtype=np.float64)
        key = float(self.map(q)[0])
        lo, hi = self._shard_aligned(*self.model.search_range(key))
        pts, _keys, _ids = self.store.scan(lo, hi)
        self.query_stats.queries += 1
        self.query_stats.model_invocations += 1
        self.query_stats.points_scanned += len(pts)
        return bool(np.any(np.all(pts == q, axis=1)))

    def point_queries(self, points: np.ndarray) -> np.ndarray:
        """Vectorised batch lookup: one shard-predictor forward pass for all
        mapped values, shard alignment done arithmetically on the whole
        batch, and one fused gather per group of overlapping shard ranges."""
        self._check_built()
        assert self.store is not None and self.model is not None
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(pts) == 0:
            return np.zeros(0, dtype=bool)
        with _span("query.point_batch", index=self.name, queries=len(pts)):
            with _span("query.model_predict", index=self.name, queries=len(pts)):
                keys = self.map(pts)
                lo, hi = self.model.search_ranges(keys)
            # Vectorised _shard_aligned: widen by inserts, round to whole shards.
            lo = ((lo - self._native_inserts) // self.shard_size) * self.shard_size
            hi = -(-(hi + self._native_inserts) // self.shard_size) * self.shard_size
            lo = np.maximum(lo, 0)
            hi = np.minimum(hi, self.n_points)
            record_range_widths(self.name, lo, hi)
            self.query_stats.queries += len(pts)
            self.query_stats.model_invocations += len(pts)
            self.query_stats.points_scanned += int(np.maximum(hi - lo, 0).sum())
            with _span("query.refine", index=self.name, queries=len(pts)):
                return batch_point_membership(self.store, lo, hi, keys, pts)

    def window_query(self, window: Rect) -> np.ndarray:
        """Approximate window query (FFN shard predictor, see module docs).

        The window intersects a rectangle of grid cells; each run of cells
        that is contiguous in cell-ID order yields one mapped-value interval
        whose scan boundaries come from the shard predictor.
        """
        self._check_built()
        assert self.store is not None and self.model is not None
        self.query_stats.queries += 1
        d = window.ndim
        corners = np.vstack([window.lo_array, window.hi_array])
        cell_lo = self._cell_indices(corners[:1])[0]
        cell_hi = self._cell_indices(corners[1:])[0]
        cell_lo = np.clip(cell_lo, 0, self.grid_size - 1)
        cell_hi = np.clip(cell_hi, 0, self.grid_size - 1)

        # Collect one candidate position range per run of trailing-dimension
        # cells, then merge overlaps so no point is scanned (or reported)
        # twice — shard alignment and error bounds make ranges overlap.
        ranges: list[tuple[int, int]] = []
        leading = [range(cell_lo[dim], cell_hi[dim] + 1) for dim in range(d - 1)]
        for prefix in _product(leading):
            first = self._row_major((*prefix, int(cell_lo[d - 1])))
            last = self._row_major((*prefix, int(cell_hi[d - 1])))
            # Scan the run of cells in full: offsets live in [0, 1) per cell,
            # so [first, last + 1) covers every candidate in the run.
            lo_range = self.model.search_range(first)
            hi_range = self.model.search_range(last + 1.0 - 1e-9)
            self.query_stats.model_invocations += 2
            ranges.append(self._shard_aligned(lo_range[0], hi_range[1]))

        results: list[np.ndarray] = []
        for lo, hi in _merge_ranges(ranges):
            pts, _keys, _ids = self.store.scan(lo, hi)
            self.query_stats.points_scanned += len(pts)
            if len(pts):
                inside = pts[window.contains_points(pts)]
                if len(inside):
                    results.append(inside)
        if not results:
            return np.empty((0, d))
        return np.vstack(results)

    def window_queries(self, windows: "list[Rect]") -> list[np.ndarray]:
        """Vectorised batch window queries (approximate, like the scalar).

        Every window's per-cell-run shard-predictor probes run in two
        batched forward passes (one per run edge) instead of two scalar
        predictions per run; ranges are shard-aligned arithmetically over
        the whole batch, merged per window, and refined through the fused
        scan + rectangle kernel
        (:func:`~repro.perf.batching.batch_window_refine`).  Probe values
        and merge behaviour match :meth:`window_query` exactly, so results
        are identical to looping it.
        """
        self._check_built()
        assert self.store is not None and self.model is not None
        if not windows:
            return []
        w = len(windows)
        d = windows[0].ndim
        with _span("query.window_batch", index=self.name, windows=w):
            self.query_stats.queries += w
            lo_corners = np.vstack([win.lo_array for win in windows])
            hi_corners = np.vstack([win.hi_array for win in windows])
            cell_lo = np.clip(self._cell_indices(lo_corners), 0, self.grid_size - 1)
            cell_hi = np.clip(self._cell_indices(hi_corners), 0, self.grid_size - 1)
            lo_probes: list[float] = []
            hi_probes: list[float] = []
            probe_owner: list[int] = []
            for wi in range(w):
                leading = [
                    range(cell_lo[wi, dim], cell_hi[wi, dim] + 1)
                    for dim in range(d - 1)
                ]
                for prefix in _product(leading):
                    first = self._row_major((*prefix, int(cell_lo[wi, d - 1])))
                    last = self._row_major((*prefix, int(cell_hi[wi, d - 1])))
                    lo_probes.append(first)
                    hi_probes.append(last + 1.0 - 1e-9)
                    probe_owner.append(wi)
            with _span(
                "query.model_predict", index=self.name, queries=2 * len(probe_owner)
            ):
                lo_pred, _ = self.model.search_ranges(np.array(lo_probes))
                _, hi_pred = self.model.search_ranges(np.array(hi_probes))
            self.query_stats.model_invocations += 2 * len(probe_owner)
            # Vectorised _shard_aligned over every probe range at once.
            lo = (
                (lo_pred - self._native_inserts) // self.shard_size
            ) * self.shard_size
            hi = -(
                -(hi_pred + self._native_inserts) // self.shard_size
            ) * self.shard_size
            lo = np.maximum(lo, 0)
            hi = np.minimum(hi, self.n_points)
            owner_arr = np.asarray(probe_owner, dtype=np.int64)
            starts_parts: list[np.ndarray] = []
            ends_parts: list[np.ndarray] = []
            owner_parts: list[np.ndarray] = []
            for wi in range(w):
                sel = owner_arr == wi
                starts, ends = batching_merge_ranges(lo[sel], hi[sel])
                starts_parts.append(starts)
                ends_parts.append(ends)
                owner_parts.append(np.full(len(starts), wi, dtype=np.int64))
            r_lo = np.concatenate(starts_parts)
            r_hi = np.concatenate(ends_parts)
            r_own = np.concatenate(owner_parts)
            self.query_stats.points_scanned += int(np.maximum(r_hi - r_lo, 0).sum())
            with _span("query.refine", index=self.name, queries=w):
                parts = batch_window_refine(
                    self.store, r_lo, r_hi, lo_corners[r_own], hi_corners[r_own]
                )
            collected: list[list[np.ndarray]] = [[] for _ in range(w)]
            for own, part in zip(r_own, parts):
                if len(part):
                    collected[own].append(part)
            return [
                np.vstack(chunks) if chunks else np.empty((0, d))
                for chunks in collected
            ]

    def _row_major(self, cell: tuple[int, ...]) -> float:
        """Row-major cell ID of integer cell coordinates."""
        cid = 0
        for c in cell:
            cid = cid * self.grid_size + c
        return float(cid)

    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        return self._knn_by_expanding_window(point, k)

    def knn_queries(self, points: np.ndarray, k: int) -> list[np.ndarray]:
        return self._knn_by_expanding_window_batch(points, k)

    def indexed_points(self) -> np.ndarray:
        """Every indexed point in storage (key) order."""
        self._check_built()
        assert self.store is not None
        return self.store.points

    # ------------------------------------------------------------------
    @property
    def error_width(self) -> int:
        """Model ``err_l + err_u`` (Table I)."""
        self._check_built()
        assert self.model is not None
        return self.model.max_error_width


def _merge_ranges(ranges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Union of half-open integer ranges, sorted and overlap-free."""
    merged: list[tuple[int, int]] = []
    for lo, hi in sorted(r for r in ranges if r[1] > r[0]):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _product(ranges: list[range]):
    """Cartesian product of ranges; yields () once when the list is empty."""
    if not ranges:
        yield ()
        return
    for head in ranges[0]:
        for tail in _product(ranges[1:]):
            yield (head, *tail)
