"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.n == 10_000

    def test_build_choices(self):
        args = build_parser().parse_args(
            ["build", "--index", "LISA", "--dataset", "NYC", "--method", "SP"]
        )
        assert args.index == "LISA"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build", "--index", "Nope"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--n", "500"]) == 0
        out = capsys.readouterr().out
        for name in ("Uniform", "Skewed", "OSM1", "OSM2", "TPC-H", "NYC"):
            assert name in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8" in out
        assert "bench_table1_costs.py" in out

    def test_build_learned(self, capsys):
        code = main(
            ["build", "--index", "ZM", "--dataset", "OSM1",
             "--method", "SP", "--n", "800", "--epochs", "50"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cost decomposition" in out
        assert "methods: {'SP'" in out

    def test_build_traditional(self, capsys):
        assert main(["build", "--index", "KDB", "--dataset", "Uniform", "--n", "800"]) == 0
        out = capsys.readouterr().out
        assert "built KDB" in out

    def test_query_command(self, capsys):
        code = main(
            ["query", "--index", "LISA", "--dataset", "NYC",
             "--method", "SP", "--n", "800", "--epochs", "50", "--queries", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "point" in out and "window" in out and "kNN" in out
        assert "40/40 found" in out

    def test_query_flood(self, capsys):
        code = main(
            ["query", "--index", "Flood", "--dataset", "OSM1",
             "--method", "SP", "--n", "800", "--epochs", "50", "--queries", "30"]
        )
        assert code == 0
        assert "30/30 found" in capsys.readouterr().out
