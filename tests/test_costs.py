"""Unit tests for the Section VI cost model."""

import numpy as np
import pytest

from repro.core.config import ELSIConfig
from repro.core.costs import CostModel


@pytest.fixture()
def model():
    return CostModel(n=100_000, d=2, config=ELSIConfig(rho=0.001, n_clusters=100, beta=1_000, eta=8))


class TestTrainSetSizes:
    def test_sp(self, model):
        assert model.train_set_size("SP") == 100

    def test_cl(self, model):
        assert model.train_set_size("CL") == 100

    def test_mr_trains_nothing(self, model):
        assert model.train_set_size("MR") == 0

    def test_rs(self, model):
        assert model.train_set_size("RS") == 100

    def test_rl(self, model):
        assert model.train_set_size("RL") == 64

    def test_og(self, model):
        assert model.train_set_size("OG") == 100_000

    def test_all_reductions_much_smaller_than_og(self, model):
        """|D_S| << |D| — the Definition 1 requirement."""
        for method in ("SP", "CL", "MR", "RS", "RL"):
            assert model.train_set_size(method) <= model.n // 100

    def test_unknown_method(self, model):
        with pytest.raises(ValueError):
            model.train_set_size("XX")


class TestExtraOperations:
    def test_cl_dominates(self, model):
        """The O(C n d i) clustering term dwarfs every other method's extra
        cost — why CL sits at the slow end of Figure 7 and Table I."""
        cl = model.extra_operations("CL")
        for method in ("SP", "MR", "RS", "RL"):
            assert cl > model.extra_operations(method)

    def test_og_free(self, model):
        assert model.extra_operations("OG") == 0.0

    def test_sp_linear_in_rho(self):
        small = CostModel(10_000, config=ELSIConfig(rho=0.001)).extra_operations("SP")
        large = CostModel(10_000, config=ELSIConfig(rho=0.01)).extra_operations("SP")
        assert large == pytest.approx(10 * small)

    def test_rs_superlinear_in_n(self):
        a = CostModel(10_000).extra_operations("RS")
        b = CostModel(100_000).extra_operations("RS")
        assert b > 10 * a  # n log n growth


class TestFormulas:
    def test_table1_rows(self, model):
        rows = {m: model.method_cost(m) for m in ("SP", "CL", "MR", "RS", "RL", "OG")}
        assert rows["SP"].training_formula == "T(rho*n) + M(n)"
        assert rows["MR"].training_formula == "M(n)"
        assert rows["OG"].extra_formula == "0"
        assert "eta" in rows["RL"].training_formula

    def test_query_operations(self, model):
        assert model.query_operations(10, 20) == 31.0
        with pytest.raises(ValueError):
            model.query_operations(-1, 0)

    def test_data_preparation(self, model):
        ops = model.data_preparation_operations()
        assert ops == pytest.approx(100_000 * 2 + 100_000 * np.log2(100_000))

    def test_update_operations_logarithmic(self, model):
        assert model.update_operations(1_024) == pytest.approx(10.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CostModel(0)
        with pytest.raises(ValueError):
            CostModel(10, d=1)
