"""The concurrent index server: micro-batching, generations, live updates.

:class:`IndexServer` owns one built learned index (wrapped in an
:class:`~repro.core.update_processor.UpdateProcessor`) behind a
*generation pointer*.  Requests enter a thread-safe queue; dispatcher
threads coalesce them into micro-batches under two admission knobs —
``max_batch_size`` and ``max_wait_seconds`` — and answer each batch
through the vectorised batch paths (``point_queries`` /
``knn_queries``), which is where PR 1's 17–111× batch-over-scalar gains
become request throughput.

Consistency model:

- Every micro-batch reads the generation pointer **once** and answers all
  of its requests from that generation, so one batch can never mix old
  and new index state.
- Updates apply synchronously to the live generation's update processor
  (side list / deletion marks) and, while a rebuild is in flight, are
  also journalled and replayed into the successor generation before the
  swap — no update is lost across a swap, and no query ever waits for a
  rebuild: rebuilding happens entirely in a background worker, and the
  swap is a single attribute assignment.
- The rebuild worker re-evaluates the rebuild predictor (or the CDF-drift
  heuristic) every ``rebuild_check_every`` updates, exactly the paper's
  ``f_u``-periodic ``to_rebuild`` protocol run off the request path.

Fault tolerance (docs/serving.md, "Durability and failure modes"):

- With a :class:`~repro.serve.wal.WriteAheadLog` attached, every
  insert/delete is appended (fsynced under the default policy) *before*
  the call returns, so recovery = latest loadable snapshot + WAL tail —
  :meth:`IndexServer.from_snapshot` replays it, quarantining corrupt
  snapshots and falling back to older generations.
- Rebuild and snapshot failures retry with exponential backoff + jitter
  under ``max_retries``; the old generation keeps serving throughout.
  The health state walks ``healthy → degraded → read_only``: degraded
  after any failure, read-only (queries served, updates rejected with
  :class:`~repro.serve.errors.ServerReadOnly`) once the rebuild retry
  budget is exhausted.  A later successful rebuild restores ``healthy``.
- Admission control is bounded: past ``max_queue_depth`` submissions
  shed with :class:`~repro.serve.errors.ServerOverloaded`; requests that
  age past ``request_timeout_seconds`` in the queue shed with
  :class:`~repro.serve.errors.RequestTimeout` instead of being served
  stale.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import ELSIConfig
from repro.core.update_processor import RebuildPredictor, UpdateProcessor
from repro.faults.registry import fault_check, get_fault_registry
from repro.indices.base import LearnedSpatialIndex
from repro.obs.metrics import get_registry
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.trace import span as _span
from repro.serve.errors import (
    RebuildFailed,
    RequestTimeout,
    ServerClosed,
    ServerOverloaded,
    ServerReadOnly,
    SnapshotFailed,
)
from repro.serve.requests import (
    KNN,
    KNN_BATCH,
    POINT,
    POINT_BATCH,
    WINDOW,
    WINDOW_BATCH,
    Reply,
    Request,
)
from repro.serve.snapshots import SnapshotManager
from repro.serve.stats import ServerStats
from repro.serve.wal import FSYNC_POLICIES, WriteAheadLog
from repro.spatial.rect import Rect

__all__ = [
    "DEGRADED",
    "Generation",
    "HEALTHY",
    "IndexServer",
    "READ_ONLY",
    "ServeConfig",
]

#: Serving-health states: ``healthy`` — everything nominal; ``degraded``
#: — a background rebuild/snapshot failed and is being retried while the
#: old generation serves; ``read_only`` — the rebuild retry budget is
#: exhausted, queries are still served but updates are rejected.
HEALTHY = "healthy"
DEGRADED = "degraded"
READ_ONLY = "read_only"

_HEALTH_LEVELS = {HEALTHY: 0, DEGRADED: 1, READ_ONLY: 2}

#: Request kind → SLO latency kind (batch kinds fold into their scalar kind).
_SLO_KINDS = {
    POINT: "point",
    POINT_BATCH: "point",
    WINDOW: "window",
    WINDOW_BATCH: "window",
    KNN: "knn",
    KNN_BATCH: "knn",
}


@dataclass(frozen=True)
class ServeConfig:
    """Admission-control, durability, and worker knobs.

    Attributes
    ----------
    max_batch_size:
        Hard cap on requests per micro-batch.
    max_wait_seconds:
        How long a dispatcher holds an under-full batch open for more
        requests.  ``0`` serves whatever is already queued immediately —
        the latency-first setting; larger windows trade p50 latency for
        throughput.
    worker_threads:
        Dispatcher thread count.  One is usually right in CPython (the
        batch engine holds the GIL only between NumPy kernels); more
        workers help when batches are large enough for NumPy to release
        the GIL for meaningful stretches.
    rebuild_check_every:
        Updates between rebuild-predictor evaluations (the serving-side
        ``f_u``).  The check and any rebuild run in a background worker.
    auto_rebuild:
        Whether the background worker may swap in rebuilt generations on
        its own.  :meth:`IndexServer.rebuild_now` works either way.
    max_queue_depth:
        Bounded admission: submissions beyond this queue depth raise
        :class:`~repro.serve.errors.ServerOverloaded` instead of growing
        the queue without limit.  ``0`` disables the bound.
    request_timeout_seconds:
        Requests older than this when a dispatcher picks them up are
        shed with :class:`~repro.serve.errors.RequestTimeout` rather
        than served stale.  ``None`` disables shedding by age.
    max_retries:
        Retry budget for background rebuilds and snapshot saves (the
        attempt count beyond the first try).
    retry_base_delay / retry_max_delay:
        Exponential-backoff window for those retries; each wait is
        jittered to avoid thundering retries across servers.
    fsync_policy:
        WAL durability: ``always`` / ``batch`` / ``off`` (see
        :mod:`repro.serve.wal`).
    slo_targets:
        Optional per-kind latency objectives, ``{"point": 0.05}`` or
        ``{"point": {"latency": 0.05, "quantile": 99.0}}`` (see
        :mod:`repro.obs.slo`).  When set, the server tracks rolling
        p50/p99/p999 and error-budget burn per kind, publishes them in
        :meth:`IndexServer.stats_snapshot`, and walks health to
        ``degraded`` while any kind's burn rate is at or past its
        budget (back to ``healthy`` once it recovers).  ``None`` (the
        default) keeps the request path entirely SLO-free.
    slo_window_seconds:
        Rolling-window length for those estimators.
    """

    max_batch_size: int = 256
    max_wait_seconds: float = 0.002
    worker_threads: int = 1
    rebuild_check_every: int = 512
    auto_rebuild: bool = True
    max_queue_depth: int = 10_000
    request_timeout_seconds: float | None = None
    max_retries: int = 3
    retry_base_delay: float = 0.05
    retry_max_delay: float = 2.0
    fsync_policy: str = "always"
    slo_targets: "dict | None" = None
    slo_window_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds must be >= 0, got {self.max_wait_seconds}"
            )
        if self.worker_threads < 1:
            raise ValueError(f"worker_threads must be >= 1, got {self.worker_threads}")
        if self.rebuild_check_every < 1:
            raise ValueError(
                f"rebuild_check_every must be >= 1, got {self.rebuild_check_every}"
            )
        if self.max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.request_timeout_seconds is not None and self.request_timeout_seconds <= 0:
            raise ValueError(
                "request_timeout_seconds must be positive or None, "
                f"got {self.request_timeout_seconds}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_base_delay < 0 or self.retry_max_delay < self.retry_base_delay:
            raise ValueError(
                "need 0 <= retry_base_delay <= retry_max_delay, got "
                f"{self.retry_base_delay}/{self.retry_max_delay}"
            )
        if self.fsync_policy not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync_policy must be one of {FSYNC_POLICIES}, got {self.fsync_policy!r}"
            )
        if self.slo_window_seconds <= 0:
            raise ValueError(
                f"slo_window_seconds must be positive, got {self.slo_window_seconds}"
            )


@dataclass(frozen=True)
class Generation:
    """One immutable-pointer serving generation."""

    gen_id: int
    processor: UpdateProcessor

    @property
    def index(self) -> LearnedSpatialIndex:
        return self.processor.index


_SHUTDOWN = object()


class IndexServer:
    """A concurrent, micro-batching server over one learned spatial index.

    Parameters
    ----------
    index:
        A *built* :class:`~repro.indices.base.LearnedSpatialIndex`.
    config:
        Admission/worker/durability knobs (:class:`ServeConfig`).
    elsi_config:
        Passed to the update processor (supplies ``f_u`` etc.).  Its
        ``faults`` spec, if any, is armed on the process fault registry.
    predictor:
        Optional trained rebuild predictor; without one the CDF-drift
        heuristic decides rebuilds.
    index_factory:
        Recreates the index class for rebuilds (same contract as
        :class:`UpdateProcessor`); required when the index was built with
        non-default constructor arguments.
    snapshots:
        Optional :class:`SnapshotManager` (or directory path); when set,
        every rebuild's result is persisted as the new generation's
        snapshot.
    wal:
        Write-ahead durability: ``True`` logs updates next to the
        snapshots (requires ``snapshots``), a path logs them there, or
        pass a :class:`~repro.serve.wal.WriteAheadLog` directly.  With a
        WAL attached every insert/delete is persisted before the call
        returns, and a base snapshot is written at construction if the
        snapshot directory is empty — so crash recovery never needs
        in-memory state.
    """

    def __init__(
        self,
        index: LearnedSpatialIndex,
        config: ServeConfig | None = None,
        elsi_config: ELSIConfig | None = None,
        predictor: RebuildPredictor | None = None,
        index_factory=None,
        snapshots: "SnapshotManager | str | None" = None,
        generation: int = 0,
        wal: "WriteAheadLog | str | bool | None" = None,
    ) -> None:
        if index.bounds is None:
            raise ValueError("the served index must be built first")
        self.config = config or ServeConfig()
        self.elsi_config = elsi_config or ELSIConfig()
        if self.elsi_config.faults:
            get_fault_registry().arm_spec(self.elsi_config.faults)
        self.predictor = predictor
        self._index_factory = index_factory or (
            lambda: type(index)(builder=index.builder)
        )
        self.stats = ServerStats()
        if isinstance(snapshots, (str, bytes)) or hasattr(snapshots, "__fspath__"):
            snapshots = SnapshotManager(snapshots)
        self.snapshots: SnapshotManager | None = snapshots
        self._gen = Generation(generation, self._make_processor(index))
        self._gen_swapped_at = time.time()
        # Serving-health gauges, recorded into the per-server registry so
        # stats_snapshot() exports them next to the counters/histograms.
        self._journal_gauge = self.stats.registry.gauge("serve.rebuild_journal_depth")
        self._age_gauge = self.stats.registry.gauge("serve.generation_age_seconds")
        self._swap_hist = self.stats.registry.histogram("serve.swap_seconds")
        self._health_gauge = self.stats.registry.gauge("serve.health_state")
        self._wal_gauge = self.stats.registry.gauge("serve.wal_depth")
        self._queue_gauge = self.stats.registry.gauge("serve.queue_depth")
        # SLO tracking is opt-in per config: without targets the request
        # path never touches it (the zero-overhead default the benchmark
        # parity budget assumes).
        self.slo: SLOTracker | None = None
        self._slo_degraded = False
        if self.config.slo_targets:
            self.slo = SLOTracker(
                SLOConfig(
                    targets=self.config.slo_targets,
                    window_seconds=self.config.slo_window_seconds,
                )
            )
        self._queue: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._rebuild_wanted = threading.Event()
        self._update_lock = threading.Lock()
        # WAL appends (including their fsync) serialize on their own lock
        # so a slow fsync never blocks the generation-swap critical
        # section.  Lock order where nested: _update_lock -> _wal_lock.
        self._wal_lock = threading.Lock()
        # Serializes submit()'s closed-check-then-enqueue against close()
        # so no request can slip into the queue after shutdown drains it.
        self._lifecycle_lock = threading.Lock()
        self._rebuild_mutex = threading.Lock()
        self._rebuilding = False
        # (op, point, wal seq or None): ops applied while a rebuild was in
        # flight, replayed into the successor generation before the swap
        # and carried into its WAL under their original sequence numbers.
        self._pending_ops: list[tuple[str, np.ndarray, "int | None"]] = []
        self._updates_since_check = 0
        self._threads: list[threading.Thread] = []
        self._started = False
        self._closed = False
        self._health = HEALTHY
        #: The last exception a rebuild attempt raised (cleared on
        #: success); background-worker failures surface here and on the
        #: health gauge instead of dying silently.
        self.last_rebuild_error: BaseException | None = None
        if wal is True:
            if self.snapshots is None:
                raise ValueError("wal=True requires a snapshot manager/directory")
            wal = WriteAheadLog(
                self.snapshots.directory,
                generation=generation,
                fsync_policy=self.config.fsync_policy,
            )
        elif isinstance(wal, (str, bytes, Path)):
            wal = WriteAheadLog(
                wal, generation=generation, fsync_policy=self.config.fsync_policy
            )
        elif wal is False:
            wal = None
        self.wal: WriteAheadLog | None = wal
        if self.snapshots is not None:
            self.snapshots.mark_serving(generation)
            # Durability bootstrap: the WAL only recovers *on top of* a
            # snapshot, so an empty snapshot directory gets the base
            # generation persisted up front.
            if self.wal is not None and not self.snapshots.generations():
                self.save_snapshot()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(
        cls,
        snapshots: "SnapshotManager | str",
        generation: int | None = None,
        wal: "str | bool | None" = None,
        salvage: bool = False,
        **kwargs,
    ) -> "IndexServer":
        """Open a server on the latest *loadable* snapshot (+ WAL tail).

        Corrupt or torn snapshots are quarantined and the loader falls
        back to the previous generation (see :meth:`SnapshotManager.load`).
        With ``wal`` set (``True`` = same directory as the snapshots),
        every write-ahead-log record from the loaded generation on is
        replayed in sequence order, so the recovered server reports every
        update that was acknowledged before the crash.

        Replay is strict by default: mid-file corruption of acknowledged
        records raises :class:`~repro.serve.errors.WALCorruption` rather
        than silently recovering without them (a torn *tail* is always
        dropped — it was never acknowledged).  ``salvage=True`` opts into
        best-effort recovery instead: the readable prefix of a corrupt
        log is kept, the loss is counted on ``wal.corrupt_records``, and
        the recovered server comes up ``degraded``.  The server also
        comes up ``degraded`` when it had to fall back past the WAL's
        retention horizon (the fallback generation's log was already
        compacted away, so its deltas are unrecoverable — counted on
        ``wal.coverage_gaps``).
        """
        if not isinstance(snapshots, SnapshotManager):
            snapshots = SnapshotManager(snapshots)
        index, gen_id = snapshots.load(generation)
        if not wal:
            return cls(index, snapshots=snapshots, generation=gen_id, **kwargs)
        wal_dir = snapshots.directory if wal is True else Path(wal)
        corrupt_counter = get_registry().counter("wal.corrupt_records")
        corrupt_before = corrupt_counter.value
        records = WriteAheadLog.replay_dir(
            wal_dir, from_generation=gen_id, salvage=salvage
        )
        salvage_dropped = corrupt_counter.value - corrupt_before
        # Reopen at the highest generation any surviving log reached, so
        # new appends land *after* every replayed record in replay order.
        wal_gens = WriteAheadLog.generations_in(wal_dir)
        open_gen = max([gen_id, *wal_gens])
        # Every generation from the loaded snapshot to the newest log
        # must still have its log on disk; a gap means compaction already
        # deleted deltas this fallback needed.  (No logs at all is not a
        # gap — the directory may simply predate the WAL.)
        coverage_gap = (
            [g for g in range(gen_id, open_gen + 1) if g not in wal_gens]
            if wal_gens
            else []
        )
        server = cls(
            index, snapshots=snapshots, generation=open_gen, wal=str(wal_dir), **kwargs
        )
        processor = server._gen.processor
        for record in records:
            if record.op == "insert":
                processor.insert(record.point)
            else:
                processor.delete(record.point)
        if coverage_gap:
            get_registry().counter("wal.coverage_gaps").inc(len(coverage_gap))
            server._set_health(DEGRADED)
        if salvage_dropped:
            server._set_health(DEGRADED)
        return server

    def start(self) -> "IndexServer":
        if self._closed:
            raise ServerClosed("this server has been closed")
        if self._started:
            return self
        self._started = True
        self._stop.clear()
        for i in range(self.config.worker_threads):
            t = threading.Thread(
                target=self._dispatch_loop, name=f"serve-dispatch-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        t = threading.Thread(
            target=self._rebuild_loop, name="serve-rebuild", daemon=True
        )
        t.start()
        self._threads.append(t)
        return self

    def close(self) -> None:
        """Stop workers; queued requests are served before shutdown.
        After ``close()`` the server is dead: submissions and updates
        raise :class:`~repro.serve.errors.ServerClosed`."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        if self._started:
            self._stop.set()
            for _ in range(self.config.worker_threads):
                self._queue.put(_SHUTDOWN)
            self._rebuild_wanted.set()
            for t in self._threads:
                t.join(timeout=30.0)
            self._threads = []
            self._started = False
        # Reject whatever is still queued (a worker that timed out above,
        # or leftover shutdown pills interleaved with late requests) so
        # no Reply is left to block until its wait() deadline.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not _SHUTDOWN and not item.reply.done():
                item.reply.reject(
                    ServerClosed("server closed before this request was served")
                )
                self.stats.note_shed("closed")
        if self.wal is not None:
            self.wal.close()

    def __enter__(self) -> "IndexServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Current generation id (bumps on every swap)."""
        return self._gen.gen_id

    @property
    def index(self) -> LearnedSpatialIndex:
        """The current generation's base index."""
        return self._gen.index

    @property
    def n_points(self) -> int:
        """Logical cardinality |D'| of the current generation."""
        return self._gen.processor.n_effective

    @property
    def health(self) -> str:
        """``healthy`` / ``degraded`` / ``read_only`` (see module docs)."""
        return self._health

    def _set_health(self, state: str) -> None:
        if state not in _HEALTH_LEVELS:
            raise ValueError(f"unknown health state {state!r}")
        if state != self._health:
            self.stats.registry.counter("serve.health_transitions", to=state).inc()
        self._health = state
        self._health_gauge.set(_HEALTH_LEVELS[state])

    def _check_slo(self) -> None:
        """Feed error-budget burn into the health walk: burning kinds
        degrade a healthy server; recovery (only from an SLO-caused
        degradation — rebuild failures own their own walk) restores it."""
        burning = self.slo.burning()
        if burning:
            if self._health == HEALTHY:
                self._slo_degraded = True
                self._set_health(DEGRADED)
                self.stats.registry.counter("serve.slo_degradations").inc()
        elif self._slo_degraded and self._health == DEGRADED:
            self._slo_degraded = False
            self._set_health(HEALTHY)

    def stats_snapshot(self) -> dict:
        """Exporter-format metrics dump: this server's registry (requests,
        batches, rebuilds, swap latency, journal depth, generation age,
        health, queue depth, WAL depth, shed/retry counters, SLO
        quantile/burn gauges) merged with the process-wide registry
        (build/query/perf/fault metrics).
        ``{name: [{labels, kind, value}, ...]}``, JSON-able."""
        self._age_gauge.set(time.time() - self._gen_swapped_at)
        self._health_gauge.set(_HEALTH_LEVELS[self._health])
        self._queue_gauge.set(self._queue.qsize())
        if self.wal is not None:
            self._wal_gauge.set(self.wal.depth)
        if self.slo is not None:
            self.slo.publish(self.stats.registry)
        out = dict(get_registry().export())
        out.update(self.stats.registry.export())
        return out

    # ------------------------------------------------------------------
    # Request submission (async) and sync conveniences
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> Reply:
        # The closed check and the enqueue happen under one lock shared
        # with close(), so a request can never land in the queue after
        # shutdown has drained it (it would hang until its wait timeout).
        with self._lifecycle_lock:
            if self._closed:
                raise ServerClosed(
                    "server is closed; submissions after close() are rejected"
                )
            if not self._started:
                raise RuntimeError(
                    "server is not started; use start() or a with-block"
                )
            depth = self.config.max_queue_depth
            if depth and self._queue.qsize() >= depth:
                self.stats.note_shed("overloaded")
                raise ServerOverloaded(
                    f"request queue is at capacity ({depth}); shedding instead of "
                    "queueing unboundedly"
                )
            self.stats.note_submit(request.kind)
            self._queue.put(request)
        return request.reply

    def submit_point(self, point: np.ndarray) -> Reply:
        return self.submit(
            Request(kind=POINT, point=np.asarray(point, dtype=np.float64))
        )

    def submit_window(self, window: Rect) -> Reply:
        return self.submit(Request(kind=WINDOW, window=window))

    def submit_knn(self, point: np.ndarray, k: int) -> Reply:
        return self.submit(
            Request(kind=KNN, point=np.asarray(point, dtype=np.float64), k=k)
        )

    # Batch submissions: one Request per whole sub-batch.  These are the
    # scatter unit of the shard router — a shard worker answers an entire
    # routed sub-batch through the queue as one request, so queue/Reply
    # bookkeeping is paid once per sub-batch instead of once per
    # operation, while the one-generation-read-per-batch consistency
    # guarantee still holds for the whole sub-batch.
    def submit_point_batch(self, points: np.ndarray) -> Reply:
        return self.submit(
            Request(kind=POINT_BATCH, points=np.asarray(points, dtype=np.float64))
        )

    def submit_window_batch(self, windows: list) -> Reply:
        return self.submit(Request(kind=WINDOW_BATCH, windows=list(windows)))

    def submit_knn_batch(self, points: np.ndarray, k: int) -> Reply:
        return self.submit(
            Request(
                kind=KNN_BATCH, points=np.asarray(points, dtype=np.float64), k=k
            )
        )

    def point_query(self, point: np.ndarray, timeout: float | None = 30.0) -> bool:
        return self.submit_point(point).wait(timeout)

    def window_query(self, window: Rect, timeout: float | None = 30.0) -> np.ndarray:
        return self.submit_window(window).wait(timeout)

    def knn_query(
        self, point: np.ndarray, k: int, timeout: float | None = 30.0
    ) -> np.ndarray:
        return self.submit_knn(point, k).wait(timeout)

    # ------------------------------------------------------------------
    # Update ingestion
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> None:
        """Ingest one insertion into the live generation (synchronous).

        With a WAL attached, the operation is durably appended before
        this returns — the acknowledgement *is* the durability point.
        While a rebuild is in flight the operation is also journalled and
        replayed into the successor generation before the swap.
        """
        self._apply_update("insert", np.asarray(point, dtype=np.float64))

    def delete(self, point: np.ndarray) -> bool:
        return self._apply_update("delete", np.asarray(point, dtype=np.float64))

    def _apply_update(self, op: str, point: np.ndarray):
        update_t0 = time.perf_counter() if self.slo is not None else 0.0
        if self._closed:
            raise ServerClosed("server is closed; updates after close() are rejected")
        if self._health == READ_ONLY:
            self.stats.note_shed("read_only")
            raise ServerReadOnly(
                "server is read-only (rebuild retry budget exhausted); "
                "updates are rejected until a rebuild succeeds"
            )
        seq = None
        if self.wal is not None:
            # Append (and fsync, per policy) BEFORE applying: if this
            # raises, the update was never acknowledged and is simply
            # absent everywhere.  The append runs under its own lock so
            # a slow fsync never blocks the swap critical section.
            with self._wal_lock:
                wal_gen = self.wal.generation
                seq = self.wal.append(op, point)
            self.stats.note_wal_append()
        with self._update_lock:
            if self.wal is not None:
                if self.wal.generation != wal_gen:
                    # A generation swap rotated the log between our append
                    # and the apply, so the record sits only in the old
                    # log and missed the swap's carry.  Re-append it to
                    # the new log under the same sequence number (replay
                    # deduplicates) so compaction cannot drop it.
                    with self._wal_lock:
                        self.wal.append(op, point, seq=seq)
                self._wal_gauge.set(self.wal.depth)
            processor = self._gen.processor
            if op == "insert":
                result = processor.insert(point)
            else:
                result = processor.delete(point)
            if self._rebuilding:
                self._pending_ops.append((op, point, seq))
                self._journal_gauge.set(len(self._pending_ops))
            self._updates_since_check += 1
            due = self._updates_since_check >= self.config.rebuild_check_every
            if due:
                self._updates_since_check = 0
        self.stats.note_update(op)
        if self.slo is not None:
            self.slo.record("update", time.perf_counter() - update_t0)
        if due and self.config.auto_rebuild:
            self._rebuild_wanted.set()
        return result

    # ------------------------------------------------------------------
    # Dispatch: micro-batch admission and execution
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        cfg = self.config
        while True:
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            if first is _SHUTDOWN:
                return
            batch = [first]
            deadline = time.perf_counter() + cfg.max_wait_seconds
            while len(batch) < cfg.max_batch_size:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    try:
                        item = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if item is _SHUTDOWN:
                    # Keep the poison pill effective for sibling workers.
                    self._queue.put(_SHUTDOWN)
                    break
                batch.append(item)
            self._serve_batch(batch)

    def _shed_expired(self, batch: list[Request], now: float) -> list[Request]:
        """Reject requests that aged past the deadline while queued."""
        timeout = self.config.request_timeout_seconds
        if timeout is None:
            return batch
        live: list[Request] = []
        for r in batch:
            waited = now - r.reply.submitted_at
            if waited > timeout:
                r.reply.reject(
                    RequestTimeout(
                        f"request waited {waited * 1e3:.1f} ms in queue "
                        f"(deadline {timeout * 1e3:.1f} ms); shed unserved"
                    )
                )
                self.stats.note_shed("timeout")
            else:
                live.append(r)
        return live

    def _serve_batch(self, batch: list[Request]) -> None:
        # One generation read per batch: every request in the batch is
        # answered from this snapshot, however long the batch takes and
        # whatever the rebuild worker swaps in meanwhile.
        gen = self._gen
        started = time.perf_counter()
        batch = self._shed_expired(batch, started)
        if not batch:
            return
        errors = 0
        try:
            fault_check("serve.dispatch")
            with _span("serve.batch", size=len(batch), gen=gen.gen_id):
                fault_check("index.query")
                points_idx = [i for i, r in enumerate(batch) if r.kind == POINT]
                if points_idx:
                    pts = np.stack([batch[i].point for i in points_idx])
                    hits = gen.processor.point_queries(pts)
                    for i, hit in zip(points_idx, hits):
                        batch[i].reply.resolve(bool(hit), gen.gen_id)
                by_k: dict[int, list[int]] = {}
                for i, r in enumerate(batch):
                    if r.kind == KNN:
                        by_k.setdefault(r.k, []).append(i)
                for k, members in by_k.items():
                    pts = np.stack([batch[i].point for i in members])
                    neighbours = gen.processor.knn_queries(pts, k)
                    for i, result in zip(members, neighbours):
                        batch[i].reply.resolve(result, gen.gen_id)
                window_idx = [i for i, r in enumerate(batch) if r.kind == WINDOW]
                if window_idx:
                    # All of the batch's windows go through the processor's
                    # batch path at once (one model pass over every corner
                    # on vectorised indices) instead of one call per window.
                    with _span("serve.window_batch", windows=len(window_idx)):
                        results = gen.processor.window_queries(
                            [batch[i].window for i in window_idx]
                        )
                    for i, result in zip(window_idx, results):
                        batch[i].reply.resolve(result, gen.gen_id)
                # Batch-kind requests already arrive vectorised; each one
                # resolves to its whole sub-batch's results in one
                # processor call against the same generation snapshot.
                for r in batch:
                    if r.kind == POINT_BATCH:
                        r.reply.resolve(
                            gen.processor.point_queries(r.points), gen.gen_id
                        )
                    elif r.kind == WINDOW_BATCH:
                        r.reply.resolve(
                            gen.processor.window_queries(r.windows), gen.gen_id
                        )
                    elif r.kind == KNN_BATCH:
                        r.reply.resolve(
                            gen.processor.knn_queries(r.points, r.k), gen.gen_id
                        )
        except BaseException as exc:  # noqa: BLE001 - must fail replies, not the worker
            for r in batch:
                if not r.reply.done():
                    r.reply.reject(exc)
                    errors += 1
        service_seconds = time.perf_counter() - started
        queue_waits = [started - r.reply.submitted_at for r in batch]
        latencies = [r.reply.latency_seconds for r in batch]
        self.stats.note_batch(
            len(batch), service_seconds, queue_waits, latencies, errors=errors
        )
        if self.slo is not None:
            for r, latency in zip(batch, latencies):
                # Batch kinds: every sub-operation experienced this latency.
                self.slo.record(
                    _SLO_KINDS.get(r.kind, r.kind), latency, count=r.size
                )
            self._check_slo()

    # ------------------------------------------------------------------
    # Background rebuild + generation swap
    # ------------------------------------------------------------------
    def _rebuild_loop(self) -> None:
        while not self._stop.is_set():
            if not self._rebuild_wanted.wait(timeout=0.1):
                continue
            self._rebuild_wanted.clear()
            if self._stop.is_set():
                return
            try:
                if self._gen.processor.to_rebuild():
                    self.rebuild_now()
            except Exception as exc:  # noqa: BLE001 - the worker must survive
                # rebuild_now already retried, counted the failures, and
                # moved the health gauge; record and keep the worker alive.
                self.last_rebuild_error = exc
                continue

    def _backoff(self, attempt: int, budget_exhausted_error: Exception) -> None:
        """Sleep one jittered exponential-backoff step (interruptible)."""
        delay = min(
            self.config.retry_base_delay * (2 ** (attempt - 1)),
            self.config.retry_max_delay,
        )
        delay *= 0.5 + random.random()  # jitter in [0.5x, 1.5x)
        if self._stop.wait(min(delay, self.config.retry_max_delay)):
            raise budget_exhausted_error

    def rebuild_now(self) -> float:
        """Rebuild on the logical data set and swap generations; returns
        the build seconds.  Safe to call from any thread; queries keep
        being served from the old generation throughout.

        Failures retry with exponential backoff + jitter under the
        ``max_retries`` budget (health ``degraded`` while retrying, old
        generation still serving).  When the budget is exhausted the
        server degrades to ``read_only`` and this raises
        :class:`~repro.serve.errors.RebuildFailed` — callers see the
        real error as ``__cause__``, and a later successful call restores
        ``healthy``."""
        with self._rebuild_mutex:
            attempt = 0
            while True:
                try:
                    elapsed = self._rebuild_once()
                    break
                except Exception as exc:  # noqa: BLE001 - injected or real
                    attempt += 1
                    self.last_rebuild_error = exc
                    self.stats.note_rebuild_failure()
                    if attempt > self.config.max_retries:
                        self._set_health(READ_ONLY)
                        raise RebuildFailed(
                            f"rebuild failed after {attempt} attempts "
                            f"(budget {self.config.max_retries} retries): {exc}"
                        ) from exc
                    self._set_health(DEGRADED)
                    self.stats.note_retry("rebuild")
                    self._backoff(
                        attempt,
                        RebuildFailed("server stopped during rebuild retries"),
                    )
            self.last_rebuild_error = None
            self._set_health(HEALTHY)
        self.stats.note_rebuild(elapsed)
        if self.snapshots is not None:
            try:
                self.save_snapshot()
                if self.wal is not None:
                    # Compact, but keep the *previous* generation's log:
                    # if this generation's snapshot later turns out to be
                    # unloadable, recovery falls back to the previous
                    # snapshot and still needs its full WAL delta.
                    self.wal.remove_through(self._gen.gen_id - 1)
            except SnapshotFailed:
                # The rebuild itself succeeded — keep serving, but flag
                # the lost durability compaction: recovery still works
                # from the older snapshot + the retained WAL files.
                self._set_health(DEGRADED)
        return elapsed

    def _rebuild_once(self) -> float:
        """One rebuild attempt: build off-path, replay the journal, swap."""
        with self._update_lock:
            old = self._gen
            points = old.processor.current_points()
            self._pending_ops = []
            self._rebuilding = True
        try:
            with _span("serve.rebuild", gen=old.gen_id, n=len(points)):
                fault_check("rebuild.worker")
                started = time.perf_counter()
                with _span("serve.rebuild.build", n=len(points)):
                    fresh = self._index_factory()
                    fresh.build(points)
                elapsed = time.perf_counter() - started
                new_processor = self._make_processor(fresh)
                swap_started = time.perf_counter()
                with _span("serve.rebuild.swap") as swap_span:
                    with self._update_lock:
                        pending = self._pending_ops
                        depth = len(pending)
                        swap_span.set(journal_depth=depth)
                        with _span("serve.rebuild.replay", journal_depth=depth):
                            for op, p, _seq in pending:
                                if op == "insert":
                                    new_processor.insert(p)
                                else:
                                    new_processor.delete(p)
                        self._pending_ops = []
                        self._gen = Generation(old.gen_id + 1, new_processor)
                        self._gen_swapped_at = time.time()
                        if self.wal is not None:
                            with self._wal_lock:
                                # Fresh deltas against the new generation's
                                # base — which was built from the points
                                # captured *before* these journalled ops, so
                                # they must be carried into the new log (under
                                # their original sequence numbers; replay
                                # deduplicates against the retained old log)
                                # or compaction would drop acknowledged,
                                # fsynced updates.
                                self.wal.rotate(old.gen_id + 1)
                                for op, p, seq in pending:
                                    self.wal.append(op, p, seq=seq, sync=False)
                                if pending:
                                    self.wal.sync()
                            self._wal_gauge.set(self.wal.depth)
                        if self.snapshots is not None:
                            self.snapshots.mark_serving(old.gen_id + 1)
                self._swap_hist.record(time.perf_counter() - swap_started)
                self._journal_gauge.set(0)
        finally:
            with self._update_lock:
                self._rebuilding = False
        return elapsed

    def _make_processor(self, index: LearnedSpatialIndex) -> UpdateProcessor:
        # auto_rebuild stays False: the *server* owns rebuild scheduling
        # (background worker), never the synchronous update call path.
        return UpdateProcessor(
            index,
            self.elsi_config,
            predictor=self.predictor,
            auto_rebuild=False,
            index_factory=self._index_factory,
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def save_snapshot(self) -> "str | None":
        """Persist the current generation's base index (side-list updates
        pending since the last rebuild are not part of the snapshot —
        with a WAL attached they are covered by the log).

        Write failures retry with backoff under ``max_retries``; raises
        :class:`~repro.serve.errors.SnapshotFailed` when exhausted."""
        if self.snapshots is None:
            raise RuntimeError("no SnapshotManager configured")
        gen = self._gen
        attempt = 0
        while True:
            try:
                path = self.snapshots.save(gen.index, gen.gen_id)
                break
            except Exception as exc:  # noqa: BLE001 - injected or real
                attempt += 1
                self.stats.note_snapshot_failure()
                if attempt > self.config.max_retries:
                    raise SnapshotFailed(
                        f"snapshot save for generation {gen.gen_id} failed "
                        f"after {attempt} attempts: {exc}"
                    ) from exc
                self.stats.note_retry("snapshot")
                self._backoff(
                    attempt,
                    SnapshotFailed("server stopped during snapshot retries"),
                )
        self.stats.note_snapshot()
        return str(path)
