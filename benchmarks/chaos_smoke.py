"""Chaos smoke: kill-and-recover, torn snapshots, rebuild crashes.

Run it standalone::

    PYTHONPATH=src python benchmarks/chaos_smoke.py

Drives every scenario in :mod:`repro.faults.chaos` — a process-level
kill (``os._exit``) mid-update-stream in all three kill modes, a torn
snapshot write that recovery must quarantine and fall back from, and a
rebuild worker that crashes twice before the retry machinery converges —
and asserts **zero acknowledged-update loss**: every recovered server
must report every update that was acknowledged before the crash, with
query results bit-identical to an uncrashed reference.

Writes the combined fault-trigger report to ``chaos_report.json`` (the
CI ``chaos-smoke`` job uploads it as an artifact) and exits non-zero on
any lost update.
"""

import json
import sys
import tempfile
from pathlib import Path

from repro.faults.chaos import SCENARIOS, ChaosError, kill_and_recover

REPORT_PATH = "chaos_report.json"


def main() -> int:
    reports = []
    ok = True
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        base = Path(tmp)
        try:
            # One process-level kill per kill mode: clean death, a
            # durable-but-unacknowledged tail op, and a torn WAL record.
            for i, kill_mode in enumerate(("before", "after-wal", "torn")):
                report = kill_and_recover(
                    base / f"kill-{kill_mode}", seed=i, kill_mode=kill_mode
                )
                reports.append(report)
                print(
                    f"kill-and-recover[{kill_mode}]: killed at op "
                    f"{report['kill_after']}, {report['acked']} acked, "
                    f"recovered prefix {report['recovered_prefix']} -- ok"
                )
            for name in ("torn-snapshot", "rebuild-crash-retry"):
                report = SCENARIOS[name](base / name, seed=0)
                reports.append(report)
                print(
                    f"{name}: {report['acked']} acked, recovered prefix "
                    f"{report['recovered_prefix']}, faults {report['faults']} -- ok"
                )
        except ChaosError as exc:
            ok = False
            print(f"CHAOS FAILURE: {exc}", file=sys.stderr)

    combined = {"scenarios": reports, "ok": ok}
    with open(REPORT_PATH, "w") as fh:
        json.dump(combined, fh, indent=2, sort_keys=True)
    print(f"wrote {REPORT_PATH} ({len(reports)} scenario reports)")
    if not ok:
        return 1
    print("chaos smoke passed: zero acknowledged-update loss across "
          f"{len(reports)} scenarios")
    return 0


if __name__ == "__main__":
    sys.exit(main())
