"""Unit tests for selector training, ground truth and the Fig. 6(b) baselines."""

import numpy as np
import pytest

from repro.core.config import ELSIConfig
from repro.core.selector import (
    DatasetRecord,
    TreeSelector,
    _og_baseline,
    best_method,
    collect_selector_data,
    records_to_samples,
    selector_accuracy,
    train_ffn_selector,
)
from repro.indices import ZMIndex


def _zm_factory(builder):
    """Module-level index factory so the process backend can pickle it."""
    return ZMIndex(builder=builder, branching=1)


def _synthetic_records() -> list[DatasetRecord]:
    """Clean synthetic speedup grid: MR dominates builds, OG queries."""
    records = []
    for n in (1_000, 5_000):
        for dist in (0.0, 0.3, 0.6, 0.9):
            r = DatasetRecord(n=n, dist_u=dist)
            r.speedups = {
                "MR": (50.0, 0.9),
                "SP": (10.0, 0.95),
                "RS": (5.0, 1.0),
                "OG": (1.0, 1.04),
            }
            records.append(r)
    return records


class TestGroundTruth:
    def test_best_method_extremes(self):
        record = _synthetic_records()[0]
        assert best_method(record, lam=1.0) == "MR"
        assert best_method(record, lam=0.0) == "OG"

    def test_records_to_samples(self):
        samples = records_to_samples(_synthetic_records())
        assert len(samples) == 8 * 4
        assert {s.method for s in samples} == {"MR", "SP", "RS", "OG"}


class TestFFNSelector:
    def test_learns_clean_grid(self):
        records = _synthetic_records()
        scorer = train_ffn_selector(
            records, method_names=("MR", "SP", "RS", "OG"), epochs=800
        )
        assert selector_accuracy(scorer, records, lam=1.0) == 1.0
        assert selector_accuracy(scorer, records, lam=0.0) == 1.0

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            train_ffn_selector([])


class TestTreeSelectors:
    @pytest.mark.parametrize("kind", ["RFR", "DTR"])
    def test_regression_variants(self, kind):
        records = _synthetic_records()
        selector = TreeSelector(kind, seed=0).fit(records)
        assert selector_accuracy(selector, records, lam=1.0) == 1.0
        # The same fitted regressor serves any lambda.
        assert selector_accuracy(selector, records, lam=0.0) == 1.0

    @pytest.mark.parametrize("kind", ["RFC", "DTC"])
    def test_classification_variants(self, kind):
        records = _synthetic_records()
        selector = TreeSelector(kind, seed=0).fit(records, lam=0.8)
        assert selector_accuracy(selector, records, lam=0.8) == 1.0

    def test_classification_wrong_lambda_rejected(self):
        selector = TreeSelector("DTC").fit(_synthetic_records(), lam=0.8)
        with pytest.raises(ValueError):
            selector.select(1_000, 0.0, ["MR", "OG"], lam=0.2)

    def test_classifier_inapplicable_prediction_falls_back(self):
        selector = TreeSelector("DTC").fit(_synthetic_records(), lam=1.0)
        # MR (the predicted best) missing from candidates -> first candidate.
        choice = selector.select(1_000, 0.0, ["SP", "OG"], lam=1.0)
        assert choice in ("SP", "OG")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TreeSelector("SVM")

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            TreeSelector("DTR").select(10, 0.0, ["SP"], lam=0.5)


class TestCollection:
    def test_collect_measures_every_method(self, fast_config):
        records = collect_selector_data(
            lambda b: ZMIndex(builder=b, branching=1),
            config=fast_config,
            cardinalities=(400,),
            deltas=(0.0, 0.6),
            n_queries=50,
        )
        assert len(records) == 2
        for record in records:
            assert set(record.speedups) == set(fast_config.methods)
            og_build, og_query = record.speedups["OG"]
            assert og_build == pytest.approx(1.0)
            assert og_query == pytest.approx(1.0)
            # Reduction methods build faster than OG.
            assert record.speedups["SP"][0] > 1.0

    def test_accuracy_requires_records(self):
        scorer = train_ffn_selector(_synthetic_records(), ("MR", "SP", "RS", "OG"), epochs=50)
        with pytest.raises(ValueError):
            selector_accuracy(scorer, [], lam=0.5)


class TestOGBaseline:
    def test_prefers_measured_og(self):
        assert _og_baseline({"OG": (2.0, 3.0), "SP": (9.0, 9.0)}) == (2.0, 3.0)

    def test_fallback_is_per_component_max(self):
        # A tuple max would pick ("A", (2.0, 0.1)) lexicographically and
        # pair the slowest build with an unrelated fast query time.
        timings = {"A": (2.0, 0.1), "B": (1.0, 5.0)}
        assert _og_baseline(timings) == (2.0, 5.0)

    def test_collect_without_og_normalises_to_slowest(self, fast_config):
        config = ELSIConfig(
            train_epochs=fast_config.train_epochs, methods=("SP", "CL")
        )
        records = collect_selector_data(
            _zm_factory,
            config=config,
            cardinalities=(400,),
            deltas=(0.0,),
            n_queries=30,
        )
        speedups = records[0].speedups
        # With the per-component baseline, each component's slowest method
        # measures exactly 1.0 and nothing falls below it.
        assert min(bs for bs, _qs in speedups.values()) == pytest.approx(1.0)
        assert min(qs for _bs, qs in speedups.values()) == pytest.approx(1.0)


class TestParallelCollection:
    """Grid cells dispatched through MapExecutor must match serial output."""

    def _collect(self, fast_config, executor):
        return collect_selector_data(
            _zm_factory,
            config=fast_config,
            cardinalities=(300, 500),
            deltas=(0.0, 0.5),
            n_queries=30,
            executor=executor,
        )

    @pytest.mark.parametrize("executor", ["thread:2", "process:2"])
    def test_parallel_grid_matches_serial(self, fast_config, executor, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
        serial = self._collect(fast_config, None)
        parallel = self._collect(fast_config, executor)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            # Data generation and the distribution feature are
            # deterministic; speedups are wall-clock measurements, so only
            # their structure is comparable.
            assert a.n == b.n
            assert a.dist_u == pytest.approx(b.dist_u, abs=1e-12)
            assert set(a.speedups) == set(b.speedups)
            assert all(bs > 0 and qs > 0 for bs, qs in b.speedups.values())
            og_b, og_q = b.speedups["OG"]
            assert og_b == pytest.approx(1.0)
            assert og_q == pytest.approx(1.0)

    def test_config_parallelism_drives_grid(self, fast_config, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLELISM", raising=False)
        config = ELSIConfig(
            train_epochs=fast_config.train_epochs,
            methods=("SP", "OG"),
            parallelism="thread",
            parallel_workers=2,
        )
        records = collect_selector_data(
            _zm_factory,
            config=config,
            cardinalities=(300,),
            deltas=(0.0, 0.5),
            n_queries=20,
        )
        assert [r.n for r in records] == [300, 300]


class TestWindowAwareCollection:
    """The paper: "Costs of other query types, e.g., window queries, can
    also be considered" — the window-query ground-truth variant."""

    def test_window_kind_collects(self, fast_config):
        records = collect_selector_data(
            lambda b: ZMIndex(builder=b, branching=1),
            config=fast_config,
            cardinalities=(400,),
            deltas=(0.0,),
            n_queries=40,
            query_kind="window",
        )
        assert len(records) == 1
        og_build, og_query = records[0].speedups["OG"]
        assert og_build == pytest.approx(1.0)
        assert og_query == pytest.approx(1.0)

    def test_invalid_kind_rejected(self, fast_config):
        with pytest.raises(ValueError):
            collect_selector_data(
                lambda b: ZMIndex(builder=b),
                config=fast_config,
                cardinalities=(100,),
                deltas=(0.0,),
                query_kind="join",
            )
