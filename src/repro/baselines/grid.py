"""Grid: a two-level regular grid file (Nievergelt et al., TODS 1984).

Per Section VII-A the grid has ``sqrt(n/B) x sqrt(n/B)`` cells so each cell
holds ``B`` points on average.  Following the paper's implementation note
(Section VII-F), every cell keeps an array of data blocks *with per-block
MBRs*: insertion-order blocks are split to keep MBRs small, which is what
makes the Grid build expensive on heavily skewed data (NYC in Figure 8) —
dense cells overflow repeatedly and their blocks are re-split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import BestFirstKNN, TraditionalIndex
from repro.spatial.rect import Rect

__all__ = ["GridIndex"]


@dataclass
class _Block:
    """A data block within a cell: points plus their MBR."""

    points: list[np.ndarray] = field(default_factory=list)
    mbr: Rect | None = None

    def add(self, point: np.ndarray) -> None:
        self.points.append(point)
        box = Rect.from_arrays(point, point)
        self.mbr = box if self.mbr is None else self.mbr.union(box)

    def as_array(self) -> np.ndarray:
        return np.vstack(self.points)


class GridIndex(TraditionalIndex):
    """The Grid competitor index."""

    name = "Grid"

    def __init__(self, block_size: int = 100) -> None:
        super().__init__(block_size)
        self.cells_per_axis = 1
        self._cells: dict[tuple[int, int], list[_Block]] = {}
        #: Block splits performed during construction; skewed data forces
        #: repeated splits in dense cells (the Figure 8 NYC effect).
        self.splits = 0

    # ------------------------------------------------------------------
    def build(self, points: np.ndarray) -> "GridIndex":
        pts = self._prepare_points(points)
        started = time.perf_counter()
        self.bounds = Rect.bounding(pts)
        self.n_points = len(pts)
        self.cells_per_axis = max(1, int(np.sqrt(len(pts) / self.block_size)))
        self._cells = {}
        for p in pts:
            self._insert_point(p)
        self.build_seconds = time.perf_counter() - started
        return self

    def _cell_of(self, point: np.ndarray) -> tuple[int, int]:
        assert self.bounds is not None
        extent = self.bounds.extents
        extent[extent == 0.0] = 1.0
        frac = (point[:2] - self.bounds.lo_array[:2]) / extent[:2]
        idx = np.clip(
            (frac * self.cells_per_axis).astype(int), 0, self.cells_per_axis - 1
        )
        return int(idx[0]), int(idx[1])

    def _insert_point(self, point: np.ndarray) -> None:
        """Insert into the point's cell, splitting full blocks to keep MBRs tight.

        A full block splits at the median of its widest MBR axis — this
        repeated re-splitting under skew is Grid's build-cost weakness.
        """
        cell = self._cell_of(point)
        blocks = self._cells.setdefault(cell, [_Block()])
        # Choose the block whose MBR grows least (first fit on empty).
        best = None
        best_growth = np.inf
        for block in blocks:
            if len(block.points) >= self.block_size:
                continue
            if block.mbr is None:
                best, best_growth = block, 0.0
                break
            growth = block.mbr.enlargement(Rect.from_arrays(point, point))
            if growth < best_growth:
                best, best_growth = block, growth
        if best is None:
            best = self._split_fullest(blocks)
        best.add(point)

    def _split_fullest(self, blocks: list[_Block]) -> _Block:
        """Split the fullest block at the median of its widest axis."""
        self.splits += 1
        victim = max(blocks, key=lambda b: len(b.points))
        pts = victim.as_array()
        axis = int(np.argmax(victim.mbr.extents)) if victim.mbr else 0
        median = float(np.median(pts[:, axis]))
        left, right = _Block(), _Block()
        for p in victim.points:
            (left if p[axis] <= median else right).add(p)
        if not left.points or not right.points:
            # Degenerate (duplicate coordinates): split by halves instead.
            left, right = _Block(), _Block()
            half = len(victim.points) // 2
            for p in victim.points[:half]:
                left.add(p)
            for p in victim.points[half:]:
                right.add(p)
        blocks.remove(victim)
        blocks.extend([left, right])
        return left if len(left.points) <= len(right.points) else right

    # ------------------------------------------------------------------
    def point_query(self, point: np.ndarray) -> bool:
        self._check_built()
        q = np.asarray(point, dtype=np.float64)
        for block in self._cells.get(self._cell_of(q), []):
            if block.mbr is not None and block.mbr.contains_point(q):
                if np.any(np.all(block.as_array() == q, axis=1)):
                    return True
        return False

    def window_query(self, window: Rect) -> np.ndarray:
        self._check_built()
        assert self.bounds is not None
        lo_cell = self._cell_of(window.lo_array)
        hi_cell = self._cell_of(window.hi_array)
        results = []
        for cx in range(lo_cell[0], hi_cell[0] + 1):
            for cy in range(lo_cell[1], hi_cell[1] + 1):
                for block in self._cells.get((cx, cy), []):
                    if block.mbr is None or not block.mbr.intersects(window):
                        continue
                    pts = block.as_array()
                    inside = pts[window.contains_points(pts)]
                    if len(inside):
                        results.append(inside)
        if not results:
            return np.empty((0, window.ndim))
        return np.vstack(results)

    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        """Exact kNN: best-first over cell blocks by MINDIST."""
        self._check_built()
        search = BestFirstKNN(point, k)
        for blocks in self._cells.values():
            for block in blocks:
                if block.mbr is not None:
                    search.push(block.mbr.min_distance_sq(point), block)
        while True:
            payload = search.pop()
            if payload is None:
                return search.results()
            search.push_points(payload.as_array())
