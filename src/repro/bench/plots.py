"""Terminal plotting for experiment output (no plotting libraries offline).

Renders the paper's figure shapes as text: grouped bar charts for the
"vs data distribution" figures and multi-series line charts for the
"vs lambda / vs ratio" figures.  Used by the examples and available to the
benchmarks for eyeballing shapes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bar_chart", "line_chart"]

_TICKS = "▏▎▍▌▋▊▉█"


def _bar(value: float, max_value: float, width: int) -> str:
    """A unicode bar of ``value`` scaled so ``max_value`` fills ``width``."""
    if max_value <= 0:
        return ""
    cells = value / max_value * width
    full = int(cells)
    frac = cells - full
    bar = "█" * full
    if frac > 1e-9 and full < width:
        bar += _TICKS[min(int(frac * 8), 7)]
    return bar


def bar_chart(
    labels: list[str],
    values: list[float],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """A horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels vs {len(values)} values")
    if not labels:
        raise ValueError("need at least one bar")
    max_value = max(values)
    label_width = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        lines.append(
            f"{label.ljust(label_width)} {_bar(value, max_value, width).ljust(width)} "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    series: dict[str, list[tuple[float, float]]],
    title: str = "",
    width: int = 60,
    height: int = 12,
    log_y: bool = False,
) -> str:
    """An ASCII line chart of (x, y) series; one glyph per series.

    Good enough to see the paper's shapes (monotone decrease with lambda,
    growth with insertion ratio, crossovers) without matplotlib.
    """
    if not series:
        raise ValueError("need at least one series")
    glyphs = "ox+*#@%&"
    all_points = [(x, y) for pts in series.values() for x, y in pts]
    if not all_points:
        raise ValueError("series contain no points")
    xs = np.array([p[0] for p in all_points], dtype=np.float64)
    ys = np.array([p[1] for p in all_points], dtype=np.float64)
    if log_y:
        if np.any(ys <= 0):
            raise ValueError("log_y requires positive y values")
        ys = np.log10(ys)
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for i, (name, pts) in enumerate(series.items()):
        glyph = glyphs[i % len(glyphs)]
        for x, y in pts:
            yy = np.log10(y) if log_y else y
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((yy - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = [title] if title else []
    y_top = 10**y_hi if log_y else y_hi
    y_bottom = 10**y_lo if log_y else y_lo
    lines.append(f"{y_top:10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_bottom:10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(f"{'':12}{x_lo:<10.3g}{'':{max(width - 20, 1)}}{x_hi:>10.3g}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
