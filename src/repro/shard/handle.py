"""Parent-side handle to one shard worker process.

A handle owns the process object and the parent end of the control pipe,
serialising requests on a per-handle lock (the protocol is strictly one
request, one response).  Every request carries a monotonically
increasing sequence id that the worker echoes back on its reply, so a
response can never be attributed to the wrong request: replies whose
sequence id doesn't match the in-flight request are stale leftovers of
an earlier timed-out call and are discarded on receipt.

Trace propagation: a request optionally carries a trace context —
``{"trace_id", "parent_span_id", "request_id"}`` — in the fixed fourth
slot of the request tuple (``None`` when tracing is off, so the worker
skips span capture entirely).  The worker runs the command under
``Tracer.capture()`` and ships the captured span dicts back in the
reply's fourth slot; the handle ``adopt()``s them into this process's
tracer under the caller's span, stamped with the caller's trace id — so
one scatter renders as one tree across every worker process it touched.
Spans travel on *error* replies too: a failed sub-request still shows
its worker-side branch.

Timeouts **poison** the handle.  When a request deadline passes, the
worker still owes the reply — it may arrive on the pipe at any later
moment — so the handle refuses further traffic (``request`` raises
:class:`ShardUnavailable`, ``alive()`` reports ``False``) until
:meth:`respawn` replaces both the worker process (killed if still
running) and the pipe.  That is what keeps a wedged-but-alive worker
from silently shifting every subsequent reply off by one.

Death detection is built into every receive: when the pipe goes EOF or
the deadline passes while the process is no longer alive, the call
raises :class:`ShardUnavailable` — the signal the router's recovery path
keys on.  :meth:`respawn` restarts the worker with ``recover=True`` so
the replacement comes back from its own snapshots + WAL replay
(``IndexServer.from_snapshot(..., wal=True)``) rather than a fresh
(state-losing) build.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time

from repro.obs.trace import get_tracer
from repro.shard.errors import ShardTimeout, ShardUnavailable
from repro.shard.worker import WorkerSpec, shard_worker_main

__all__ = ["ShardHandle"]

#: Granularity of the poll loop that watches both the pipe and the
#: process liveness while waiting for a response.
_POLL_SECONDS = 0.05


class ShardHandle:
    """Spawn, talk to, respawn, and stop one shard worker."""

    def __init__(
        self,
        spec: WorkerSpec,
        start_timeout: float = 300.0,
        mp_context: str = "spawn",
    ) -> None:
        self.spec = spec
        self.start_timeout = start_timeout
        self._ctx = mp.get_context(mp_context)
        self._lock = threading.RLock()
        self._proc = None
        self._conn = None
        self._ready_status: dict | None = None
        self._seq = 0
        self._poisoned = False
        self._spawn()

    # ------------------------------------------------------------------
    @property
    def shard_id(self) -> int:
        return self.spec.shard_id

    @property
    def ready_status(self) -> "dict | None":
        """The status the worker reported when it came up."""
        return self._ready_status

    def alive(self) -> bool:
        """Whether the handle can take requests.  A poisoned handle (a
        request timed out, leaving its reply un-consumed on the pipe)
        reports ``False`` even while the wedged worker process still
        runs — the router's respawn path treats both the same way."""
        with self._lock:
            return (
                not self._poisoned
                and self._proc is not None
                and self._proc.is_alive()
            )

    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=shard_worker_main,
            args=(self.spec, child_conn),
            name=f"shard-{self.spec.shard_id:03d}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._proc = proc
        self._conn = parent_conn
        self._poisoned = False
        kind, payload = self._recv_raw(self.start_timeout)
        if kind == "err":
            self._reap()
            raise payload
        if kind != "ready":  # pragma: no cover - protocol invariant
            self._reap()
            raise ShardUnavailable(
                f"shard {self.shard_id} sent {kind!r} instead of the ready "
                "handshake",
                shard_id=self.shard_id,
            )
        self._ready_status = payload

    def _reap(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self._proc is not None:
            if self._poisoned and self._proc.is_alive():
                # A wedged worker never exits on its own — don't wait for
                # a graceful join that cannot come.
                self._proc.kill()
            self._proc.join(timeout=5.0)
            if self._proc.is_alive():  # pragma: no cover - last resort
                self._proc.kill()
                self._proc.join(timeout=5.0)
            self._proc = None

    def _recv_raw(self, timeout: float):
        """Receive one message, watching for worker death the whole time."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = _POLL_SECONDS
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardTimeout(
                        f"shard {self.shard_id} did not answer within "
                        f"{timeout:.1f}s",
                        shard_id=self.shard_id,
                    )
                wait = min(wait, remaining)
            try:
                if self._conn.poll(wait):
                    return self._conn.recv()
            except (EOFError, OSError):
                raise ShardUnavailable(
                    f"shard {self.shard_id} worker died mid-request "
                    f"(exitcode {self._proc.exitcode})",
                    shard_id=self.shard_id,
                ) from None
            if not self._proc.is_alive() and not self._conn.poll(0):
                raise ShardUnavailable(
                    f"shard {self.shard_id} worker is dead "
                    f"(exitcode {self._proc.exitcode})",
                    shard_id=self.shard_id,
                )

    def _recv_response(self, seq: int, timeout: float):
        """Receive the ``(seq, kind, result, spans)`` reply matching
        ``seq``, discarding stale replies left over from earlier timed-out
        requests (their sequence ids can never match)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            message = self._recv_raw(remaining)
            if len(message) == 4 and message[0] == seq:
                return message[1], message[2], message[3]

    # ------------------------------------------------------------------
    def request(
        self, command: str, *payload, timeout: float = 60.0, trace=None
    ):
        """Send ``(seq, timeout, command, trace, *payload)``; return the
        result or raise the worker's exception (or
        :class:`ShardUnavailable` on death / a poisoned handle,
        :class:`ShardTimeout` on deadline).

        ``trace`` is the optional cross-process trace context dict
        (``trace_id`` / ``parent_span_id`` / ``request_id``); when set,
        worker spans shipped on the reply are adopted into this process's
        tracer under ``parent_span_id`` before the result (or the
        worker's error) is surfaced."""
        with self._lock:
            if self._poisoned:
                raise ShardUnavailable(
                    f"shard {self.shard_id} handle is poisoned after a "
                    "request timeout (its reply is still owed on the pipe); "
                    "respawn before further requests",
                    shard_id=self.shard_id,
                )
            if self._proc is None or not self._proc.is_alive():
                raise ShardUnavailable(
                    f"shard {self.shard_id} has no live worker",
                    shard_id=self.shard_id,
                )
            self._seq += 1
            seq = self._seq
            try:
                self._conn.send((seq, timeout, command, trace, *payload))
            except (BrokenPipeError, OSError):
                raise ShardUnavailable(
                    f"shard {self.shard_id} worker died before the request "
                    "could be sent",
                    shard_id=self.shard_id,
                ) from None
            try:
                kind, result, spans = self._recv_response(seq, timeout)
            except ShardTimeout:
                # The worker still owes this reply; if we kept using the
                # pipe it would be returned to the *next* request.  Refuse
                # all further traffic until respawn() replaces the worker
                # and the pipe.
                self._poisoned = True
                raise
        if trace is not None and spans:
            get_tracer().adopt(
                spans,
                parent_id=trace.get("parent_span_id"),
                trace_id=trace.get("trace_id"),
            )
        if kind == "err":
            raise result
        return result

    def respawn(self) -> dict:
        """Replace a dead (or wedged) worker; recovery comes from disk.

        A poisoned worker that is still running is killed first — its
        pipe may carry a stale reply that must never be read.  The
        replacement always opens with ``recover=True`` — snapshots +
        WAL replay — so every update the dead worker acknowledged is
        present in the replacement.
        """
        with self._lock:
            self._reap()
            self.spec.recover = True
            self._spawn()
            return dict(self._ready_status or {})

    def crash(self) -> None:
        """Order the worker to die with ``os._exit`` (chaos hook)."""
        with self._lock:
            if self._proc is None:
                return
            self._seq += 1
            try:
                self._conn.send((self._seq, 0.0, "crash", None))
            except (BrokenPipeError, OSError):
                pass
            self._proc.join(timeout=10.0)

    def close(self) -> None:
        with self._lock:
            if self._proc is None:
                return
            if self._proc.is_alive() and not self._poisoned:
                self._seq += 1
                try:
                    self._conn.send((self._seq, 30.0, "close", None))
                    self._recv_response(self._seq, 30.0)
                except (ShardUnavailable, ShardTimeout, BrokenPipeError, OSError):
                    # Graceful close failed — make _reap kill rather than
                    # wait out a join that may never come.
                    self._poisoned = True
            self._reap()
