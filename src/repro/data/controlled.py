"""Data sets with a controlled KS distance from the uniform distribution.

The method scorer and rebuild predictor are trained on generated data sets
whose ``dist(D_U, D)`` is varied "from 0.0 to 0.9 with a step size of 0.1"
(Section VII-B2).  This module constructs such sets exactly.

Construction.  For a target distance ``delta`` we use a two-piece linear
CDF on [0, 1]: a fraction ``m = (1 + delta) / 2`` of the mass is uniform on
``[0, w]`` with ``w = (1 - delta) / 2``, and the rest uniform on ``[w, 1]``.
The CDF gap against the uniform grows linearly to exactly ``delta`` at
``x = w`` and decays linearly after it, so the *population* KS distance from
U(0, 1) is exactly ``delta`` for any ``delta in [0, 1)``.  Sampling is by
inverse transform; the empirical distance converges to ``delta`` at the
usual ``O(1/sqrt(n))`` rate.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "dataset_with_uniform_distance",
    "keys_with_uniform_distance",
    "population_cdf",
]


def _check_delta(delta: float) -> None:
    if not 0.0 <= delta < 1.0:
        raise ValueError(f"delta must lie in [0, 1), got {delta}")


def population_cdf(x: np.ndarray, delta: float) -> np.ndarray:
    """The two-piece CDF with KS distance ``delta`` from U(0, 1)."""
    _check_delta(delta)
    xs = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
    if delta == 0.0:
        return xs
    w = (1.0 - delta) / 2.0
    m = (1.0 + delta) / 2.0
    left = m * xs / w
    right = m + (1.0 - m) * (xs - w) / (1.0 - w)
    return np.where(xs <= w, left, right)


def _inverse_cdf(u: np.ndarray, delta: float) -> np.ndarray:
    """Inverse of :func:`population_cdf` for inverse-transform sampling."""
    if delta == 0.0:
        return u
    w = (1.0 - delta) / 2.0
    m = (1.0 + delta) / 2.0
    left = u * w / m
    right = w + (u - m) * (1.0 - w) / (1.0 - m)
    return np.where(u <= m, left, right)


def keys_with_uniform_distance(n: int, delta: float, seed: int = 0) -> np.ndarray:
    """``n`` one-dimensional keys in [0, 1] with KS distance ``delta`` from uniform."""
    _check_delta(delta)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(seed)
    # Stratified uniforms keep the empirical CDF close to the population CDF
    # even at small n, so the realised distance tracks the target tightly.
    u = (np.arange(n) + rng.random(n)) / max(n, 1)
    rng.shuffle(u)
    return _inverse_cdf(u, delta)


def dataset_with_uniform_distance(
    n: int, delta: float, d: int = 2, seed: int = 0
) -> np.ndarray:
    """(n, d) points whose every marginal has KS distance ``delta`` from uniform.

    Coordinates are sampled independently, each through the two-piece CDF;
    ``delta = 0`` reduces to the uniform generator.
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    cols = [
        keys_with_uniform_distance(n, delta, seed=seed + 7919 * dim)
        for dim in range(d)
    ]
    return np.column_stack(cols) if n else np.empty((0, d))
