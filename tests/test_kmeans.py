"""Unit tests for k-means clustering."""

import numpy as np
import pytest

from repro.spatial.kmeans import kmeans


def test_recovers_separated_clusters():
    rng = np.random.default_rng(0)
    centers = np.array([[0.1, 0.1], [0.9, 0.1], [0.5, 0.9]])
    pts = np.vstack([c + rng.normal(0, 0.02, (50, 2)) for c in centers])
    result = kmeans(pts, 3, seed=0)
    found = result.centroids[np.argsort(result.centroids[:, 0])]
    expected = centers[np.argsort(centers[:, 0])]
    np.testing.assert_allclose(found, expected, atol=0.05)


def test_labels_match_nearest_centroid():
    pts = np.random.default_rng(1).random((200, 2))
    result = kmeans(pts, 5, seed=0)
    dists = np.linalg.norm(pts[:, None, :] - result.centroids[None, :, :], axis=2)
    np.testing.assert_array_equal(result.labels, np.argmin(dists, axis=1))


def test_inertia_decreases_with_k():
    pts = np.random.default_rng(2).random((300, 2))
    inertias = [kmeans(pts, k, seed=0).inertia for k in (1, 4, 16)]
    assert inertias[0] > inertias[1] > inertias[2]


def test_k_equals_n():
    pts = np.random.default_rng(3).random((10, 2))
    result = kmeans(pts, 10, seed=0)
    assert result.inertia == pytest.approx(0.0, abs=1e-12)


def test_k_one_is_mean():
    pts = np.random.default_rng(4).random((50, 2))
    result = kmeans(pts, 1, seed=0)
    np.testing.assert_allclose(result.centroids[0], pts.mean(axis=0), atol=1e-9)


def test_duplicate_points():
    pts = np.tile([[0.5, 0.5]], (20, 1))
    result = kmeans(pts, 3, seed=0)
    assert result.inertia == pytest.approx(0.0)


def test_invalid_args():
    pts = np.zeros((5, 2))
    with pytest.raises(ValueError):
        kmeans(pts, 0)
    with pytest.raises(ValueError):
        kmeans(pts, 6)
    with pytest.raises(ValueError):
        kmeans(np.empty((0, 2)), 1)


def test_seed_reproducibility():
    pts = np.random.default_rng(5).random((100, 2))
    a = kmeans(pts, 4, seed=7)
    b = kmeans(pts, 4, seed=7)
    np.testing.assert_array_equal(a.centroids, b.centroids)
