"""ELSI — Efficiently Learning Spatial Indices (ICDE 2023), reproduced.

The package implements the complete system from the paper plus every
substrate it depends on:

- :mod:`repro.core` — the ELSI system: build processor (Algorithm 1), the
  six-method training-set pool (Section V), the learned method selector
  (Section IV-B1), the update processor and rebuild predictor
  (Section IV-B2), and the Section VI cost model;
- :mod:`repro.indices` — the four base learned spatial indices the paper
  integrates ELSI into: ZM, ML-Index, RSMI, LISA;
- :mod:`repro.baselines` — the four traditional competitors: Grid, KDB,
  HRR, RR*;
- :mod:`repro.ml` — the NumPy FFN/Adam/DQN/CART substrate (PyTorch and
  scikit-learn are substituted, see DESIGN.md);
- :mod:`repro.spatial` — space-filling curves, KS/CDF machinery, quadtree,
  k-means, iDistance;
- :mod:`repro.storage` — block storage;
- :mod:`repro.data` — the paper's six data sets (real sets simulated);
- :mod:`repro.queries` — workloads, ground truth and recall;
- :mod:`repro.bench` — the per-table/figure experiment drivers.

Quick start::

    from repro import ELSI, ELSIConfig, ZMIndex
    from repro.data import load_dataset

    points = load_dataset("OSM1", n=20_000)
    elsi = ELSI(ELSIConfig(lam=0.8))
    index = elsi.build(ZMIndex, points, method="RS")
    index.point_query(points[0])           # True
"""

from repro.baselines import GridIndex, HRRIndex, KDBIndex, RStarIndex
from repro.core import ELSI, ELSIConfig, ELSIModelBuilder, UpdateProcessor
from repro.indices import LISAIndex, MLIndex, RSMIIndex, ZMIndex

__version__ = "1.0.0"

__all__ = [
    "ELSI",
    "ELSIConfig",
    "ELSIModelBuilder",
    "GridIndex",
    "HRRIndex",
    "KDBIndex",
    "LISAIndex",
    "MLIndex",
    "RSMIIndex",
    "RStarIndex",
    "UpdateProcessor",
    "ZMIndex",
    "__version__",
]
