"""The server's stats surface: per-stage counters + latency histograms.

Everything here is cheap enough to record on the hot path (a lock, a few
counter increments, one bucket index per latency sample) and structured
enough for benchmarks and tests to assert on: :meth:`ServerStats.snapshot`
returns a plain JSON-able dict.

The instruments live in a per-server :class:`~repro.obs.metrics.MetricsRegistry`
(so two servers in one process never mix their counts) and are therefore
also available in the registry's exporter formats —
:meth:`ServerStats.export` / :meth:`ServerStats.export_text` — alongside
the process-wide build/query metrics (``IndexServer.stats_snapshot``).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["LatencyHistogram", "ServerStats"]


def _seconds_snapshot(hist: Histogram) -> dict:
    """A histogram snapshot with the serving surface's ``*_seconds`` keys."""
    return {
        "count": hist.count,
        "mean_seconds": hist.mean,
        "max_seconds": hist.max,
        "p50_seconds": hist.percentile(50),
        "p99_seconds": hist.percentile(99),
    }


class LatencyHistogram(Histogram):
    """Log-spaced latency histogram (1 µs .. ~134 s, doubling buckets).

    A :class:`~repro.obs.metrics.Histogram` fixed to the serving layer's
    shape, with the snapshot keys the serve benchmarks and tests assert on.
    Percentiles are estimated from bucket upper bounds — pessimistic by at
    most one doubling, which is plenty for serving dashboards and for the
    benchmark's p50/p99 columns.
    """

    BASE = 1e-6
    N_BUCKETS = 28

    def __init__(self) -> None:
        super().__init__(base=self.BASE, n_buckets=self.N_BUCKETS)

    def snapshot(self) -> dict:
        return _seconds_snapshot(self)


class ServerStats:
    """Counters + histograms accumulated across the server's stages.

    Stages: *admission* (requests enqueued, by kind), *batching* (batches
    dispatched, their sizes), *service* (per-batch execution time), and
    the end-to-end request latency.  Updates/rebuilds/snapshots have their
    own counters so tests can assert the background machinery ran.

    All instruments come from ``registry`` (a fresh per-instance
    :class:`~repro.obs.metrics.MetricsRegistry` by default); the legacy
    attribute surface (``stats.batches``, ``stats.latency`` ...) reads the
    same objects, so existing call sites keep working unchanged.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self._lock = threading.Lock()
        self.registry = registry or MetricsRegistry()
        r = self.registry
        self._submitted_kinds: list[str] = []
        self._completed = r.counter("serve.requests_completed")
        self._errors = r.counter("serve.request_errors")
        self._batches = r.counter("serve.batches")
        self._batched_requests = r.counter("serve.batched_requests")
        self._max_batch_size = r.gauge("serve.max_batch_size")
        self._inserts = r.counter("serve.updates", op="insert")
        self._deletes = r.counter("serve.updates", op="delete")
        self._rebuilds = r.counter("serve.rebuilds")
        self._rebuild_seconds = r.counter("serve.rebuild_seconds")
        self._generation_swaps = r.counter("serve.generation_swaps")
        self._snapshots_saved = r.counter("serve.snapshots_saved")
        self._shed_reasons: list[str] = []
        self._retry_ops: list[str] = []
        self._rebuild_failures = r.counter("serve.rebuild_failures")
        self._snapshot_failures = r.counter("serve.snapshot_failures")
        self._wal_appends = r.counter("serve.wal_appends")
        self.queue_wait = r.histogram(
            "serve.queue_wait_seconds",
            base=LatencyHistogram.BASE,
            n_buckets=LatencyHistogram.N_BUCKETS,
        )
        self.service = r.histogram(
            "serve.service_seconds",
            base=LatencyHistogram.BASE,
            n_buckets=LatencyHistogram.N_BUCKETS,
        )
        self.latency = r.histogram(
            "serve.request_latency_seconds",
            base=LatencyHistogram.BASE,
            n_buckets=LatencyHistogram.N_BUCKETS,
        )

    # ------------------------------------------------------------------
    def note_submit(self, kind: str) -> None:
        with self._lock:
            if kind not in self._submitted_kinds:
                self._submitted_kinds.append(kind)
            self.registry.counter("serve.requests_submitted", kind=kind).inc()

    def note_update(self, kind: str) -> None:
        with self._lock:
            if kind == "insert":
                self._inserts.inc()
            else:
                self._deletes.inc()

    def note_batch(
        self,
        size: int,
        service_seconds: float,
        queue_waits: "list[float]",
        latencies: "list[float]",
        errors: int = 0,
    ) -> None:
        with self._lock:
            self._batches.inc()
            self._batched_requests.inc(size)
            self._completed.inc(size - errors)
            self._errors.inc(errors)
            if size > self._max_batch_size.value:
                self._max_batch_size.set(size)
            self.service.record(service_seconds)
            self.queue_wait.record_many(queue_waits)
            self.latency.record_many(latencies)

    def note_rebuild(self, seconds: float) -> None:
        with self._lock:
            self._rebuilds.inc()
            self._rebuild_seconds.inc(seconds)
            self._generation_swaps.inc()

    def note_snapshot(self) -> None:
        with self._lock:
            self._snapshots_saved.inc()

    def note_shed(self, reason: str) -> None:
        """One request (or update) shed: ``overloaded`` (queue at
        capacity), ``timeout`` (aged out while queued), or ``read_only``
        (update rejected in degraded-read-only state)."""
        with self._lock:
            if reason not in self._shed_reasons:
                self._shed_reasons.append(reason)
            self.registry.counter("serve.requests_shed", reason=reason).inc()

    def note_retry(self, op: str) -> None:
        """One backoff retry of a background op (``rebuild``/``snapshot``)."""
        with self._lock:
            if op not in self._retry_ops:
                self._retry_ops.append(op)
            self.registry.counter("serve.retries", op=op).inc()

    def note_rebuild_failure(self) -> None:
        with self._lock:
            self._rebuild_failures.inc()

    def note_snapshot_failure(self) -> None:
        with self._lock:
            self._snapshot_failures.inc()

    def note_wal_append(self) -> None:
        with self._lock:
            self._wal_appends.inc()

    # ------------------------------------------------------------------
    # Legacy attribute surface (reads the registry instruments)
    # ------------------------------------------------------------------
    @property
    def submitted(self) -> dict[str, int]:
        return {
            kind: int(
                self.registry.counter("serve.requests_submitted", kind=kind).value
            )
            for kind in self._submitted_kinds
        }

    @property
    def completed(self) -> int:
        return int(self._completed.value)

    @property
    def errors(self) -> int:
        return int(self._errors.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def batched_requests(self) -> int:
        return int(self._batched_requests.value)

    @property
    def max_batch_size(self) -> int:
        return int(self._max_batch_size.value)

    @property
    def inserts(self) -> int:
        return int(self._inserts.value)

    @property
    def deletes(self) -> int:
        return int(self._deletes.value)

    @property
    def rebuilds(self) -> int:
        return int(self._rebuilds.value)

    @property
    def rebuild_seconds(self) -> float:
        return self._rebuild_seconds.value

    @property
    def generation_swaps(self) -> int:
        return int(self._generation_swaps.value)

    @property
    def snapshots_saved(self) -> int:
        return int(self._snapshots_saved.value)

    @property
    def shed(self) -> dict[str, int]:
        return {
            reason: int(
                self.registry.counter("serve.requests_shed", reason=reason).value
            )
            for reason in self._shed_reasons
        }

    @property
    def retries(self) -> dict[str, int]:
        return {
            op: int(self.registry.counter("serve.retries", op=op).value)
            for op in self._retry_ops
        }

    @property
    def rebuild_failures(self) -> int:
        return int(self._rebuild_failures.value)

    @property
    def snapshot_failures(self) -> int:
        return int(self._snapshot_failures.value)

    @property
    def wal_appends(self) -> int:
        return int(self._wal_appends.value)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "errors": self.errors,
                "batches": self.batches,
                "mean_batch_size": self.mean_batch_size,
                "max_batch_size": self.max_batch_size,
                "inserts": self.inserts,
                "deletes": self.deletes,
                "rebuilds": self.rebuilds,
                "rebuild_seconds": self.rebuild_seconds,
                "generation_swaps": self.generation_swaps,
                "snapshots_saved": self.snapshots_saved,
                "shed": self.shed,
                "retries": self.retries,
                "rebuild_failures": self.rebuild_failures,
                "snapshot_failures": self.snapshot_failures,
                "wal_appends": self.wal_appends,
                "queue_wait": _seconds_snapshot(self.queue_wait),
                "service": _seconds_snapshot(self.service),
                "latency": _seconds_snapshot(self.latency),
            }

    def export(self) -> dict:
        """The registry exporter format (``{name: [{labels, kind, value}]}``)."""
        return self.registry.export()

    def export_text(self) -> str:
        """Prometheus-style text lines for every serve instrument."""
        return self.registry.export_text()
