"""A check-in stream with skewed insertions and predictor-driven rebuilds.

This is the paper's Figure 1 scenario: an index built on historical
check-ins degrades as a burst of check-ins arrives from one small region
(a festival, say).  The example:

1. builds an RSMI index on historical OSM-like check-ins through ELSI,
2. streams in heavily skewed new check-ins through the update processor,
3. tracks the CDF drift ``sim(D', D)`` and the ``to_rebuild`` decision,
4. compares point-query latency with and without the triggered rebuild
   (the -F vs -R contrast of Figure 15).

Run:  python examples/checkin_stream_updates.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ELSI, ELSIConfig, RSMIIndex
from repro.data import load_dataset
from repro.data.generators import skewed

N_HISTORY = 10_000
N_STREAM = 6_000
BATCH = 1_500


def query_latency(processor, sample: np.ndarray) -> float:
    started = time.perf_counter()
    for p in sample:
        processor.point_query(p)
    return (time.perf_counter() - started) / len(sample) * 1e6


def main() -> None:
    print(f"Building an RSMI index on {N_HISTORY:,} historical check-ins ...")
    history = load_dataset("OSM1", N_HISTORY)
    elsi = ELSI(ELSIConfig(lam=0.8, train_epochs=250, f_u=500))

    index_f = elsi.build(RSMIIndex, history, method="RS")
    index_r = elsi.build(RSMIIndex, history, method="RS")
    no_rebuild = elsi.updates(index_f)   # the "-F" configuration
    with_rebuild = elsi.updates(index_r)  # the "-R" configuration

    print(f"Streaming {N_STREAM:,} skewed check-ins (one festival district) ...\n")
    stream = skewed(N_STREAM, s=4.0, seed=11)
    rng = np.random.default_rng(0)

    header = f"{'inserted':>9} {'sim(D_prime,D)':>15} {'to_rebuild':>11} " \
             f"{'F query (us)':>13} {'R query (us)':>13} {'rebuilds':>9}"
    print(header)
    print("-" * len(header))
    for start in range(0, N_STREAM, BATCH):
        batch = stream[start : start + BATCH]
        for p in batch:
            no_rebuild.insert(p)
            with_rebuild.insert(p)

        # Capture the CDF-change feature *before* a rebuild resets the
        # baseline snapshot.
        sim = with_rebuild.update_features()[4]
        decision = with_rebuild.to_rebuild()
        seconds = with_rebuild.rebuild() if decision else 0.0

        sample_ids = rng.integers(0, len(history), size=400)
        sample = np.vstack([history[sample_ids], batch[:100]])
        f_us = query_latency(no_rebuild, sample)
        r_us = query_latency(with_rebuild, sample)
        total = start + len(batch)
        note = f" (rebuilt in {seconds:.2f}s)" if decision else ""
        print(f"{total:>9,} {sim:>15.3f} {str(decision):>11} "
              f"{f_us:>13.1f} {r_us:>13.1f} {with_rebuild.rebuilds:>9}{note}")

    print("\nFinal comparison (Figure 15's -F vs -R contrast):")
    sample = np.vstack([history[::20], stream[::20]])
    f_us = query_latency(no_rebuild, sample)
    r_us = query_latency(with_rebuild, sample)
    print(f"  no rebuilds  (RSMI-F): {f_us:7.1f} us/query, side list holds "
          f"{no_rebuild.n_pending:,} points")
    print(f"  with rebuilds (RSMI-R): {r_us:7.1f} us/query after "
          f"{with_rebuild.rebuilds} rebuild(s)")
    if r_us < f_us:
        print(f"  -> rebuilds cut point-query latency by "
              f"{100 * (1 - r_us / f_us):.0f}% "
              f"(paper reports 47% for RSMI-R at 512% insertions)")


if __name__ == "__main__":
    main()
