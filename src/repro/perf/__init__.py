"""Performance subsystem: parallel build execution and batch-query kernels.

ELSI's contribution is shrinking the training set behind each index model;
this package makes the surrounding *system* costs match — per-partition
model builds dispatch through a configurable :class:`MapExecutor`
(serial / thread / process / fused backends) and batch point lookups run
through vectorised gather kernels instead of per-query Python loops.
"""

from repro.perf.executor import MapExecutor, resolve_executor

__all__ = ["MapExecutor", "resolve_executor"]
