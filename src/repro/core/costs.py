"""The Section VI cost model, in symbolic form.

Expresses the build-cost decomposition of every method as big-O term
strings plus concrete *operation-count* estimates, so Table I can print
both the formulas and measured seconds side by side, and tests can check
that measured component times scale the way the analysis says.

Notation follows the paper: ``T(m)`` is the model-training cost on m
points, ``M(m)`` the cost of m model invocations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ELSIConfig

__all__ = ["CostModel", "MethodCost"]


@dataclass(frozen=True)
class MethodCost:
    """A method's analytical build cost (Section VI-B / Table I)."""

    method: str
    training_formula: str
    extra_formula: str
    train_set_size: int
    extra_operations: float


class CostModel:
    """Instantiate the Section VI formulas for concrete (n, d, parameters)."""

    def __init__(self, n: int, d: int = 2, config: ELSIConfig | None = None) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if d < 2:
            raise ValueError(f"d must be >= 2, got {d}")
        self.n = n
        self.d = d
        self.config = config or ELSIConfig()

    # ------------------------------------------------------------------
    def data_preparation_operations(self) -> float:
        """cost_dp = O(nd + n log n): mapping plus sorting."""
        return self.n * self.d + self.n * max(np.log2(self.n), 1.0)

    def train_set_size(self, method: str) -> int:
        """|D_S| for each method at the configured parameters."""
        cfg = self.config
        sizes = {
            "SP": max(2, int(cfg.rho * self.n)),
            "RSP": max(2, int(cfg.rho * self.n)),
            "CL": min(cfg.n_clusters, self.n),
            "MR": 0,  # no online training at all
            "RS": max(1, int(np.ceil(self.n / cfg.beta))),
            "RL": cfg.eta**self.d,
            "OG": self.n,
        }
        if method not in sizes:
            raise ValueError(f"unknown method {method!r}")
        return sizes[method]

    def extra_operations(self, method: str, n_mr: int = 20, kmeans_iterations: int = 10) -> float:
        """The method-specific cost_ex operation counts of Section VI-B."""
        cfg = self.config
        n, d = self.n, self.d
        log_n = max(np.log2(n), 1.0)
        if method in ("SP", "RSP"):
            return cfg.rho * n
        if method == "CL":
            return cfg.n_clusters * n * d * kmeans_iterations
        if method == "MR":
            n_s = 256
            return n_mr * n_s * log_n
        if method == "RS":
            depth = max(np.log(max(n / cfg.beta, 2.0)) / np.log(2**d), 1.0)
            return n * depth
        if method == "RL":
            e = cfg.rl_steps
            return e * (cfg.eta**d) * log_n + cfg.rl_alpha * e / 5.0
        if method == "OG":
            return 0.0
        raise ValueError(f"unknown method {method!r}")

    def method_cost(self, method: str) -> MethodCost:
        """The Table I row for ``method``."""
        formulas = {
            "SP": ("T(rho*n) + M(n)", "O(rho*n)"),
            "RSP": ("T(rho*n) + M(n)", "O(rho*n)"),
            "CL": ("T(C) + M(n)", "O(C*n*d*i)"),
            "MR": ("M(n)", "O(n_mr*n_S*log n)"),
            "RS": ("T(n/beta) + M(n)", "O(n*log_{2^d}(n/beta))"),
            "RL": ("T(eta^d) + M(n)", "M(e) + O(e*eta^d*log n) + T(alpha)"),
            "OG": ("T(n) + M(n)", "0"),
        }
        if method not in formulas:
            raise ValueError(f"unknown method {method!r}")
        training, extra = formulas[method]
        return MethodCost(
            method=method,
            training_formula=training,
            extra_formula=extra,
            train_set_size=self.train_set_size(method),
            extra_operations=self.extra_operations(method),
        )

    # ------------------------------------------------------------------
    def query_operations(self, err_l: int, err_u: int) -> float:
        """cost_q = M(1) + O(err_l + err_u) — in scan units, M(1) as 1."""
        if err_l < 0 or err_u < 0:
            raise ValueError("error bounds must be non-negative")
        return 1.0 + err_l + err_u

    def update_operations(self, n_pending: int) -> float:
        """Default update-procedure cost O(log n_u), Section VI-D."""
        return max(np.log2(max(n_pending, 2)), 1.0)
