"""Closed-loop workload driver for :class:`~repro.serve.server.IndexServer`.

No network dependency: client threads in this process submit requests
straight into the server's queue and block on the replies.  Each client
keeps ``pipeline`` requests outstanding (submit a window of async
requests, then wait for all of them), so the dispatcher actually sees
concurrent demand and can form micro-batches — a strictly closed loop
with a handful of threads would cap every batch at the client count.

The same module provides the unbatched baseline the benchmark compares
against: one thread calling the update processor's scalar query methods
one request at a time, i.e. serving without the serving subsystem.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.requests import KNN, POINT, WINDOW
from repro.serve.server import IndexServer
from repro.spatial.rect import Rect

__all__ = ["DriverResult", "ServeWorkload", "run_baseline", "run_closed_loop"]


@dataclass(frozen=True)
class ServeWorkload:
    """A pre-generated request stream (shared by server and baseline runs).

    ``kinds`` holds one of the request-kind strings per operation;
    ``points`` the query point (or window centre) per operation; ``windows``
    a Rect for window ops (None elsewhere); ``k`` the neighbour count for
    kNN ops.
    """

    kinds: list
    points: np.ndarray
    windows: list
    k: int = 10

    def __len__(self) -> int:
        return len(self.kinds)

    @classmethod
    def points_only(cls, points: np.ndarray) -> "ServeWorkload":
        pts = np.asarray(points, dtype=np.float64)
        return cls(kinds=[POINT] * len(pts), points=pts, windows=[None] * len(pts))

    @classmethod
    def mixed(
        cls,
        data: np.ndarray,
        n_requests: int,
        point_fraction: float = 0.8,
        knn_fraction: float = 0.1,
        k: int = 10,
        window_side: float = 0.05,
        seed: int = 0,
    ) -> "ServeWorkload":
        """Points/kNN/windows drawn from the indexed data distribution."""
        rng = np.random.default_rng(seed)
        data = np.asarray(data, dtype=np.float64)
        idx = rng.integers(0, len(data), size=n_requests)
        pts = data[idx].copy()
        draws = rng.random(n_requests)
        kinds: list = []
        windows: list = []
        for i in range(n_requests):
            if draws[i] < point_fraction:
                kinds.append(POINT)
                windows.append(None)
            elif draws[i] < point_fraction + knn_fraction:
                kinds.append(KNN)
                windows.append(None)
            else:
                kinds.append(WINDOW)
                windows.append(Rect.centered(pts[i], window_side))
        return cls(kinds=kinds, points=pts, windows=windows, k=k)


@dataclass
class DriverResult:
    """Aggregate outcome of one driver run."""

    n_requests: int
    elapsed_seconds: float
    errors: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Requests per second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.n_requests / self.elapsed_seconds


def _submit(server: IndexServer, workload: ServeWorkload, i: int):
    kind = workload.kinds[i]
    if kind == POINT:
        return server.submit_point(workload.points[i])
    if kind == KNN:
        return server.submit_knn(workload.points[i], workload.k)
    return server.submit_window(workload.windows[i])


def run_closed_loop(
    server: IndexServer,
    workload: ServeWorkload,
    clients: int = 8,
    pipeline: int = 64,
    timeout: float = 60.0,
) -> DriverResult:
    """Drive the server with ``clients`` threads, each keeping up to
    ``pipeline`` requests outstanding, until the workload is exhausted.

    Operations are sharded round-robin across clients so every run issues
    the exact same request multiset regardless of thread scheduling.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if pipeline < 1:
        raise ValueError(f"pipeline must be >= 1, got {pipeline}")
    errors = [0] * clients
    start_barrier = threading.Barrier(clients + 1)

    def client(cid: int) -> None:
        my_ops = range(cid, len(workload), clients)
        start_barrier.wait()
        window: list = []
        for i in my_ops:
            window.append(_submit(server, workload, i))
            if len(window) >= pipeline:
                for reply in window:
                    try:
                        reply.wait(timeout)
                    except Exception:  # noqa: BLE001 - tallied, not fatal
                        errors[cid] += 1
                window = []
        for reply in window:
            try:
                reply.wait(timeout)
            except Exception:  # noqa: BLE001
                errors[cid] += 1

    threads = [
        threading.Thread(target=client, args=(cid,), name=f"serve-client-{cid}")
        for cid in range(clients)
    ]
    for t in threads:
        t.start()
    start_barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    return DriverResult(
        n_requests=len(workload),
        elapsed_seconds=elapsed,
        errors=sum(errors),
        stats=server.stats.snapshot(),
    )


def run_baseline(processor, workload: ServeWorkload) -> DriverResult:
    """One-request-at-a-time serving: a single loop over the scalar query
    APIs, no queue, no batching.  This is the benchmark's denominator."""
    started = time.perf_counter()
    for i in range(len(workload)):
        kind = workload.kinds[i]
        if kind == POINT:
            processor.point_query(workload.points[i])
        elif kind == KNN:
            processor.knn_query(workload.points[i], workload.k)
        else:
            processor.window_query(workload.windows[i])
    elapsed = time.perf_counter() - started
    return DriverResult(n_requests=len(workload), elapsed_seconds=elapsed)
