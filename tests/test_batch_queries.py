"""Tests for the batch point-query API (vectorised lookups)."""

import numpy as np
import pytest

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.indices import LISAIndex, MLIndex, RSMIIndex, ZMIndex


@pytest.fixture(scope="module")
def indices(osm_points):
    config = ELSIConfig(train_epochs=80)
    built = {}
    for cls in (ZMIndex, MLIndex, RSMIIndex, LISAIndex):
        built[cls.name] = cls(builder=ELSIModelBuilder(config, method="SP")).build(
            osm_points
        )
    return built


@pytest.mark.parametrize("name", ["ZM", "ML", "RSMI", "LISA"])
def test_batch_matches_scalar(indices, osm_points, name):
    index = indices[name]
    rng = np.random.default_rng(0)
    batch = np.vstack([osm_points[:200], rng.random((50, 2)) + 1.5])
    got = index.point_queries(batch)
    expected = np.array([index.point_query(p) for p in batch])
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("name", ["ZM", "ML"])
def test_vectorised_path_all_hits_and_misses(indices, osm_points, name):
    index = indices[name]
    hits = index.point_queries(osm_points[:300])
    assert hits.all()
    misses = index.point_queries(osm_points[:50] + 2.0)
    assert not misses.any()


def test_batch_on_two_stage_rmi(osm_points):
    config = ELSIConfig(train_epochs=80)
    index = ZMIndex(
        builder=ELSIModelBuilder(config, method="SP"), branching=4
    ).build(osm_points)
    got = index.point_queries(osm_points[:200])
    assert got.all()


def test_search_ranges_match_scalar(osm_points):
    config = ELSIConfig(train_epochs=80)
    index = ZMIndex(
        builder=ELSIModelBuilder(config, method="SP"), branching=4
    ).build(osm_points)
    keys = index.store.keys[::37]
    lo, hi = index.model.search_ranges(keys)
    for i, key in enumerate(keys):
        s_lo, s_hi = index.model.search_range(float(key))
        assert lo[i] == s_lo
        assert hi[i] == s_hi


def test_batch_after_native_inserts(osm_points):
    config = ELSIConfig(train_epochs=80)
    index = ZMIndex(builder=ELSIModelBuilder(config, method="SP")).build(osm_points)
    extra = np.random.default_rng(1).random((40, 2))
    for p in extra:
        index.insert(p)
    assert index.point_queries(extra).all()


def test_single_row_batch(indices, osm_points):
    index = indices["ZM"]
    assert index.point_queries(osm_points[0]).shape == (1,)
