"""Block storage substrate.

All indices in the paper store points in fixed-size blocks (B = 100 points,
Section VII-B1) — traditional indices as tree leaves or grid cells, learned
indices as the sorted address space that predict-and-scan ranges over.
"""

from repro.storage.blocks import BlockStore

__all__ = ["BlockStore"]
