"""Figure 12 — window query time and recall vs data distribution.

0.01%-of-space windows following the data distribution (1 000 in the paper,
scaled here).

Paper shapes to hold: -F window times within a small factor of the no-ELSI
indices (worst 1.35x in the paper, sometimes faster); ML recall stays 1.0
(exact by design); RSMI-F / LISA-F recall stays above ~0.9.
"""

from repro.bench.experiments import fig12_window
from repro.bench.harness import format_table


def test_fig12_window(ctx, benchmark):
    result = benchmark.pedantic(fig12_window, args=(ctx,), rounds=1, iterations=1)

    print()
    times = result["query_us"]
    recalls = result["recall"]
    index_names = list(next(iter(times.values())))
    rows = [
        [name] + [f"{times[name][i]:.0f}" for i in index_names] for name in times
    ]
    print(format_table(["data set"] + index_names, rows,
                       title="Figure 12(a): window query time (us)"))
    recall_names = list(next(iter(recalls.values())))
    rows = [
        [name] + [f"{recalls[name][i]:.3f}" for i in recall_names]
        for name in recalls
    ]
    print(format_table(["data set"] + recall_names, rows,
                       title="Figure 12(b): window recall"))

    for name in times:
        # ML answers exactly, with or without ELSI.
        assert recalls[name]["ML"] == 1.0
        assert recalls[name]["ML-F"] == 1.0
        # RSMI-F / LISA-F recall stays high (paper: >= 0.91 / 0.92).
        assert recalls[name]["RSMI-F"] > 0.85, name
        assert recalls[name]["LISA-F"] > 0.85, name
        # -F window times within a moderate factor of no-ELSI.
        for learned in ("ML", "LISA", "RSMI"):
            ratio = times[name][f"{learned}-F"] / max(times[name][learned], 1e-9)
            assert ratio < 4.0, (name, learned, ratio)
