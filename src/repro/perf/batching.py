"""Vectorised batch point-query primitives.

The per-query loop each index used to run — ``store.scan`` per key, then a
NumPy membership test over the scanned slice — costs one interpreter
round-trip per query.  The batch engine here replaces it with three
vectorised stages over the whole query set:

1. **Group** the per-query predicted scan ranges: clip to the store, sort
   by lower bound and merge overlapping ``[lo, hi)`` intervals into
   disjoint groups (pure NumPy, no Python loop over queries).
2. **Gather** each merged group once — one fused ``store.scan`` per group
   instead of one per query, so overlapping ranges (common under RMI error
   bounds and insert widening) are read and charged once.
3. **Match** all queries at once: because the store is key-sorted, a
   query's candidates inside its range are the run of rows whose key lies
   within ``atol`` of the query key (``searchsorted``); the runs are
   flattened into one coordinate comparison and reduced per query.

Results are exactly the booleans the scalar loop produces: stage 3 checks
the same key-match and coordinate-equality predicates over the same scan
interval, and restricting candidates to key-matching rows cannot drop a
hit because every index maps equal coordinates to bit-equal keys.
"""

from __future__ import annotations

import numpy as np

from repro.storage.blocks import BlockStore

__all__ = ["batch_point_membership", "merge_ranges"]


def merge_ranges(
    lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge half-open integer ranges into disjoint sorted groups.

    Empty ranges (``hi <= lo``) are dropped.  Returns the merged groups'
    ``(starts, ends)`` arrays, sorted ascending.
    """
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    keep = hi > lo
    lo, hi = lo[keep], hi[keep]
    if len(lo) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    order = np.argsort(lo, kind="stable")
    lo, hi = lo[order], hi[order]
    running_end = np.maximum.accumulate(hi)
    # A range starts a new group when it begins past everything seen so far.
    new_group = np.empty(len(lo), dtype=bool)
    new_group[0] = True
    new_group[1:] = lo[1:] > running_end[:-1]
    starts = lo[new_group]
    group_last = np.append(np.flatnonzero(new_group)[1:] - 1, len(lo) - 1)
    ends = running_end[group_last]
    return starts, ends


def batch_point_membership(
    store: BlockStore,
    lo: np.ndarray,
    hi: np.ndarray,
    query_keys: np.ndarray,
    query_points: np.ndarray,
    atol: float = 0.0,
) -> np.ndarray:
    """One membership bool per query, given per-query scan ranges.

    Parameters
    ----------
    store:
        The key-sorted store; merged groups are gathered through
        :meth:`~repro.storage.blocks.BlockStore.scan` so block-read
        accounting reflects the fused gathers.
    lo, hi:
        Per-query half-open scan ranges (model prediction ± error bounds,
        already widened for inserts); clipped to the store here.
    query_keys:
        Mapped key per query (same mapping that keyed the store).
    query_points:
        (b, d) query coordinates; a query hits iff some row in its range
        has a key within ``atol`` of ``query_keys`` and equal coordinates.
    """
    n = len(store)
    b = len(query_keys)
    out = np.zeros(b, dtype=bool)
    # Serving-path edge cases: an empty request batch has nothing to do,
    # and a single-point batch degenerates to the scalar predict-and-scan
    # (one store.scan, no range merging or flattened-run bookkeeping).
    if n == 0 or b == 0:
        return out
    lo = np.clip(np.asarray(lo, dtype=np.int64), 0, n)
    hi = np.clip(np.asarray(hi, dtype=np.int64), 0, n)
    if b == 1:
        pts, keys, _ids = store.scan(int(lo[0]), int(hi[0]))
        if len(pts):
            match = np.abs(keys - query_keys[0]) <= atol
            out[0] = bool(np.any(match & np.all(pts == query_points[0], axis=1)))
        return out

    # One fused gather per merged group (charges block reads once per group).
    for g_lo, g_hi in zip(*merge_ranges(lo, hi)):
        store.scan(int(g_lo), int(g_hi))

    # Candidate runs: rows whose key matches, intersected with the range.
    run_lo = np.searchsorted(store.keys, query_keys - atol, side="left")
    run_hi = np.searchsorted(store.keys, query_keys + atol, side="right")
    cand_lo = np.maximum(run_lo, lo)
    cand_hi = np.minimum(run_hi, hi)
    counts = np.maximum(cand_hi - cand_lo, 0)
    total = int(counts.sum())
    if total == 0:
        return out

    # Flatten every query's candidate run into one coordinate comparison.
    owner = np.repeat(np.arange(b), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
    rows = np.arange(total) - np.repeat(offsets, counts) + np.repeat(cand_lo, counts)
    equal = np.all(store.points[rows] == query_points[owner], axis=1)
    np.logical_or.at(out, owner, equal)
    return out
