"""Hilbert space-filling curve codes in d dimensions (Skilling's transform).

The HRR baseline (Qi et al., PVLDB 2018) bulk-loads an R-tree by sorting
points in Hilbert order; unlike the Z-curve, consecutive Hilbert codes are
always spatially adjacent, which is what gives HRR its window-query edge.

The implementation follows John Skilling, "Programming the Hilbert curve"
(AIP Conf. Proc. 707, 2004), vectorised over points with NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.spatial.rect import Rect
from repro.spatial.zcurve import grid_coordinates

__all__ = ["hilbert_decode", "hilbert_encode", "hilbert_values"]


def _check_args(d: int, bits: int) -> None:
    if d < 1:
        raise ValueError(f"dimensionality must be >= 1, got {d}")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if d * bits > 63:
        raise ValueError(f"d * bits must be <= 63 to fit uint64, got {d * bits}")


def _axes_to_transpose(x: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's AxesToTranspose, vectorised: (n, d) coords → transpose form."""
    x = x.astype(np.uint64).copy()
    d = x.shape[1]
    one = np.uint64(1)
    m = np.uint64(1) << np.uint64(bits - 1)

    # Inverse undo of the Hilbert transform.
    q = m
    while q > one:
        p = q - one
        for i in range(d):
            flip = (x[:, i] & q) != 0
            # Where the bit is set: invert the low bits of x[:, 0].
            x[flip, 0] ^= p
            # Elsewhere: exchange the low bits of x[:, 0] and x[:, i].
            keep = ~flip
            t = (x[keep, 0] ^ x[keep, i]) & p
            x[keep, 0] ^= t
            x[keep, i] ^= t
        q >>= one

    # Gray encode.
    for i in range(1, d):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(len(x), dtype=np.uint64)
    q = m
    while q > one:
        nz = (x[:, d - 1] & q) != 0
        t[nz] ^= q - one
        q >>= one
    for i in range(d):
        x[:, i] ^= t
    return x


def _transpose_to_axes(x: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's TransposeToAxes, vectorised: transpose form → (n, d) coords."""
    x = x.astype(np.uint64).copy()
    d = x.shape[1]
    one = np.uint64(1)
    n_top = np.uint64(2) << np.uint64(bits - 1)

    # Gray decode.
    t = x[:, d - 1] >> one
    for i in range(d - 1, 0, -1):
        x[:, i] ^= x[:, i - 1]
    x[:, 0] ^= t

    # Undo excess work.
    q = np.uint64(2)
    while q != n_top:
        p = q - one
        for i in range(d - 1, -1, -1):
            flip = (x[:, i] & q) != 0
            x[flip, 0] ^= p
            keep = ~flip
            tt = (x[keep, 0] ^ x[keep, i]) & p
            x[keep, 0] ^= tt
            x[keep, i] ^= tt
        q <<= one
    return x


def _interleave_transpose(x: np.ndarray, bits: int) -> np.ndarray:
    """Pack the transpose form into a single uint64 Hilbert index per point.

    Bit ``b`` (0 = LSB) of axis ``i`` lands at code position ``b*d + (d-1-i)``
    so that axis 0 carries the most significant bit of each d-bit group.
    """
    n, d = x.shape
    codes = np.zeros(n, dtype=np.uint64)
    for b in range(bits):
        for i in range(d):
            bit = (x[:, i] >> np.uint64(b)) & np.uint64(1)
            codes |= bit << np.uint64(b * d + (d - 1 - i))
    return codes


def _deinterleave_transpose(codes: np.ndarray, d: int, bits: int) -> np.ndarray:
    """Inverse of :func:`_interleave_transpose`."""
    out = np.zeros((len(codes), d), dtype=np.uint64)
    for b in range(bits):
        for i in range(d):
            bit = (codes >> np.uint64(b * d + (d - 1 - i))) & np.uint64(1)
            out[:, i] |= bit << np.uint64(b)
    return out


def hilbert_encode(coords: np.ndarray, bits: int = 16) -> np.ndarray:
    """Hilbert indices for integer grid coordinates of shape (n, d)."""
    arr = np.asarray(coords)
    if arr.ndim != 2:
        raise ValueError(f"expected an (n, d) array, got shape {arr.shape}")
    n, d = arr.shape
    _check_args(d, bits)
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    if np.any(arr < 0) or np.any(arr >= 2**bits):
        raise ValueError(f"coordinates must lie in [0, 2**{bits})")
    transpose = _axes_to_transpose(arr.astype(np.uint64), bits)
    return _interleave_transpose(transpose, bits)


def hilbert_decode(codes: np.ndarray, d: int, bits: int = 16) -> np.ndarray:
    """Inverse of :func:`hilbert_encode`; returns (n, d) uint64 coordinates."""
    _check_args(d, bits)
    arr = np.asarray(codes, dtype=np.uint64)
    if arr.ndim != 1:
        raise ValueError(f"expected a 1-D array of codes, got shape {arr.shape}")
    transpose = _deinterleave_transpose(arr, d, bits)
    return _transpose_to_axes(transpose, bits)


def hilbert_values(points: np.ndarray, bounds: Rect, bits: int = 16) -> np.ndarray:
    """Hilbert codes of continuous points inside ``bounds``."""
    return hilbert_encode(grid_coordinates(points, bounds, bits), bits=bits)
