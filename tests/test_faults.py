"""Tests for the fault-injection registry (sites, specs, arming, firing)."""

import pytest

from repro.core.config import ELSIConfig
from repro.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultRegistry,
    FaultSpec,
    InjectedFault,
    fault_check,
    get_fault_registry,
    parse_fault_spec,
)


class TestSpecs:
    def test_unknown_site_and_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(site="warp.core")
        with pytest.raises(ValueError):
            FaultSpec(site="wal.append", kind="explode")
        for site in FAULT_SITES:
            for kind in FAULT_KINDS:
                FaultSpec(site=site, kind=kind)

    def test_parse_spec_string(self):
        specs = parse_fault_spec(
            "wal.append=error, snapshot.write=torn_write:2, rebuild.worker=error:3:5"
        )
        assert [(s.site, s.kind, s.times, s.after) for s in specs] == [
            ("wal.append", "error", 1, 0),
            ("snapshot.write", "torn_write", 2, 0),
            ("rebuild.worker", "error", 3, 5),
        ]
        assert parse_fault_spec("") == []

    @pytest.mark.parametrize(
        "bad",
        ["wal.append", "wal.append=", "wal.append=error:x", "wal.append=error:1:2:3"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_elsi_config_validates_faults(self):
        ELSIConfig(faults="wal.append=error:1")
        with pytest.raises(ValueError):
            ELSIConfig(faults="nope=error")


class TestFiring:
    def test_error_fires_exactly_times_then_disarms(self):
        registry = FaultRegistry()
        registry.arm("index.query", kind="error", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                registry.check("index.query")
        assert registry.check("index.query") is None
        assert registry.triggered("index.query") == 2
        assert registry.armed() == {}

    def test_after_skips_initial_hits(self):
        registry = FaultRegistry()
        registry.arm("serve.dispatch", kind="error", times=1, after=2)
        assert registry.check("serve.dispatch") is None
        assert registry.check("serve.dispatch") is None
        with pytest.raises(InjectedFault):
            registry.check("serve.dispatch")

    def test_torn_write_returns_marker(self):
        registry = FaultRegistry()
        registry.arm("wal.append", kind="torn_write")
        assert registry.check("wal.append") == "torn_write"
        assert registry.check("wal.append") is None

    def test_delay_sleeps_and_continues(self):
        registry = FaultRegistry()
        registry.arm("rebuild.worker", kind="delay", delay_seconds=0.0)
        assert registry.check("rebuild.worker") is None
        assert registry.triggered("rebuild.worker") == 1

    def test_unarmed_sites_fast_path(self):
        registry = FaultRegistry()
        assert registry.check("wal.append") is None
        registry.arm("wal.append")
        assert registry.check("snapshot.write") is None  # other site untouched

    def test_unlimited_times_zero(self):
        registry = FaultRegistry()
        registry.arm("wal.append", kind="torn_write", times=0)
        for _ in range(5):
            assert registry.check("wal.append") == "torn_write"
        assert "wal.append" in registry.armed()

    def test_env_spec_arms_registry(self):
        registry = FaultRegistry(env="snapshot.write=error:2")
        assert registry.armed()["snapshot.write"].times == 2

    def test_report_shape(self):
        registry = FaultRegistry()
        registry.arm("wal.append", times=2)
        with pytest.raises(InjectedFault):
            registry.check("wal.append")
        report = registry.report()
        assert report["triggered"] == {"wal.append": 1}
        assert report["armed"]["wal.append"]["fired"] == 1

    def test_disarm_and_reset(self):
        registry = FaultRegistry()
        registry.arm("wal.append")
        registry.arm("index.query")
        registry.disarm("wal.append")
        assert set(registry.armed()) == {"index.query"}
        registry.reset()
        assert registry.armed() == {} and registry.triggered() == 0


class TestGlobalRegistry:
    def test_module_helper_hits_global(self):
        get_fault_registry().arm("index.query", kind="error", times=1)
        with pytest.raises(InjectedFault):
            fault_check("index.query")
        assert fault_check("index.query") is None
