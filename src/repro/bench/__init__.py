"""Benchmark harness: one driver per table/figure of Section VII.

- :mod:`repro.bench.harness` — scale presets, timing, table formatting,
- :mod:`repro.bench.experiments` — the experiment drivers (Fig. 6 – Fig. 16,
  Tables I and II), shared by ``benchmarks/`` and ``examples/``.
"""

from repro.bench.harness import ExperimentScale, format_table, time_call

__all__ = ["ExperimentScale", "format_table", "time_call"]
