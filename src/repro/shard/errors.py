"""Typed errors raised by the sharded serving tier.

These compose with (and wrap) the single-server failure vocabulary from
:mod:`repro.serve.errors`: a worker process forwards the server's typed
errors (``ServerOverloaded``, ``ServerReadOnly``, ...) verbatim over the
control pipe, and the router either handles them (retry, re-route,
respawn) or re-raises them annotated with the shard they came from.
"""

from __future__ import annotations

__all__ = [
    "ShardError",
    "ShardTimeout",
    "ShardUnavailable",
]


class ShardError(RuntimeError):
    """Base class for shard-tier failures."""

    def __init__(self, message: str, shard_id: "int | None" = None) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class ShardUnavailable(ShardError):
    """The shard's worker process is dead or unreachable.

    For idempotent queries the router recovers transparently (respawn
    from the shard's snapshots + WAL, then retry); for updates this
    surfaces to the caller — an update is applied at most once, never
    blindly retried across a crash boundary.
    """


class ShardTimeout(ShardError):
    """A shard did not answer within the router's request timeout."""
