"""Unit tests for the method scorer (Section IV-B1, Equation 2)."""

import numpy as np
import pytest

from repro.core.scorer import MethodScorer, ScorerSample, build_score, query_score


def _samples() -> list[ScorerSample]:
    """Synthetic ground truth with a clean structure: MR builds fastest,
    OG queries fastest; true at every (n, dist)."""
    samples = []
    for n in (1_000, 10_000):
        for dist in (0.0, 0.4, 0.8):
            samples.extend(
                [
                    ScorerSample("MR", n, dist, build_speedup=60.0, query_speedup=0.9),
                    ScorerSample("SP", n, dist, build_speedup=12.0, query_speedup=0.97),
                    ScorerSample("RS", n, dist, build_speedup=6.0, query_speedup=1.02),
                    ScorerSample("OG", n, dist, build_speedup=1.0, query_speedup=1.05),
                ]
            )
    return samples


class TestScores:
    def test_build_score_monotone(self):
        assert build_score(1.0) == 0.0
        assert build_score(2.0) < build_score(64.0)
        assert build_score(1e9) == 1.5  # clipped

    def test_query_score_identity_region(self):
        assert query_score(0.95) == pytest.approx(0.95)
        assert query_score(5.0) == 2.0  # clipped

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            build_score(0.0)
        with pytest.raises(ValueError):
            query_score(-1.0)


class TestMethodScorer:
    @pytest.fixture()
    def scorer(self):
        s = MethodScorer(method_names=("MR", "SP", "RS", "OG"), seed=0)
        s.fit(_samples(), epochs=800)
        return s

    def test_features_layout(self):
        s = MethodScorer(method_names=("A", "B"))
        row = s.features("B", 10_000, 0.3)
        np.testing.assert_allclose(row, [0.0, 1.0, 0.5, 0.3])

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            MethodScorer(("A",)).features("B", 10, 0.0)

    def test_equation2_weighting(self, scorer):
        methods = ["MR", "SP", "RS", "OG"]
        c = scorer.combined_scores(5_000, 0.4, methods, lam=0.5, w_q=1.0)
        b, q = scorer.predict_scores(5_000, 0.4, methods)
        np.testing.assert_allclose(c, 0.5 * b + 0.5 * q, atol=1e-12)

    def test_lambda_one_picks_fastest_build(self, scorer):
        assert scorer.select(5_000, 0.4, ["MR", "SP", "RS", "OG"], lam=1.0) == "MR"

    def test_lambda_zero_picks_fastest_query(self, scorer):
        assert scorer.select(5_000, 0.4, ["MR", "SP", "RS", "OG"], lam=0.0) == "OG"

    def test_selection_restricted_to_candidates(self, scorer):
        # MR excluded: the next-best build method wins at lambda=1.
        assert scorer.select(5_000, 0.4, ["SP", "RS", "OG"], lam=1.0) == "SP"

    def test_w_q_amplifies_query_term(self, scorer):
        """Equation 2: larger w_Q shifts the balance toward query cost."""
        methods = ["MR", "OG"]
        low = scorer.combined_scores(5_000, 0.4, methods, lam=0.5, w_q=1.0)
        high = scorer.combined_scores(5_000, 0.4, methods, lam=0.5, w_q=3.0)
        # OG's relative standing improves with w_q.
        assert (high[1] - high[0]) > (low[1] - low[0])

    def test_unfitted_rejected(self):
        s = MethodScorer(("A", "B"))
        with pytest.raises(RuntimeError):
            s.predict_scores(10, 0.0, ["A"])

    def test_invalid_lambda(self, scorer):
        with pytest.raises(ValueError):
            scorer.combined_scores(10, 0.0, ["MR"], lam=1.5)

    def test_empty_candidates_rejected(self, scorer):
        with pytest.raises(ValueError):
            scorer.select(10, 0.0, [], lam=0.5)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            MethodScorer(("A",)).fit([])
