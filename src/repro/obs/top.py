"""``repro obs top`` — an ANSI-refresh terminal dashboard for the fleet.

Rendering is a pure function (:func:`render_top`) from one or two
overview snapshots (the :meth:`~repro.shard.telemetry.FleetTelemetry.overview`
contract) to a text frame, so tests assert on strings; the refresh loop
(:func:`run_top`) just clears the screen (``ESC[2J ESC[H``), calls a
snapshot source, and sleeps.  Per-shard qps comes from the delta of the
``serve.requests_completed`` counter between consecutive frames divided
by the interval — the first frame shows ``-`` because there is nothing
to difference yet.
"""

from __future__ import annotations

import sys
import time

__all__ = ["render_top", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"

_COLUMNS = (
    ("shard", 5),
    ("state", 9),
    ("gen", 4),
    ("points", 9),
    ("qps", 8),
    ("queue", 6),
    ("gen_age", 8),
    ("p99_ms", 8),
    ("cpu_s", 8),
    ("scrape", 7),
)


def _fmt(value, width: int, precision: int = 1) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        return f"{value:.{precision}f}".rjust(width)
    return str(value).rjust(width)


def _shard_qps(shard: dict, prev_shard: "dict | None", interval: float):
    if prev_shard is None or interval <= 0:
        return None
    delta = shard.get("requests_completed", 0.0) - prev_shard.get(
        "requests_completed", 0.0
    )
    return max(0.0, delta / interval)


def render_top(
    overview: dict,
    prev: "dict | None" = None,
    interval: float = 1.0,
) -> str:
    """One dashboard frame from an overview snapshot (and optionally the
    previous one, for qps deltas)."""
    lines = [
        f"repro fleet — {overview.get('n_shards', 0)} shards — "
        f"overall {overview.get('overall', 'unknown')}"
    ]
    header = " ".join(name.rjust(width) for name, width in _COLUMNS)
    lines.append(header)
    lines.append("-" * len(header))
    prev_shards = (prev or {}).get("shards", {})
    for sid, shard in sorted(overview.get("shards", {}).items()):
        state = shard.get("health", "down")
        if not shard.get("up", False):
            state = f"DOWN:{shard.get('error') or '?'}"[: _COLUMNS[1][1]]
        qps = _shard_qps(shard, prev_shards.get(sid), interval)
        row = (
            _fmt(sid, 5),
            _fmt(state, 9),
            _fmt(shard.get("generation"), 4),
            _fmt(shard.get("n_points"), 9),
            _fmt(qps, 8),
            _fmt(int(shard.get("queue_depth", 0)), 6),
            _fmt(shard.get("generation_age_seconds"), 8),
            _fmt(
                None
                if shard.get("p99_seconds") is None
                else shard["p99_seconds"] * 1e3,
                8,
                precision=2,
            ),
            _fmt(shard.get("cpu_seconds"), 8),
            _fmt(shard.get("scrape_age_seconds"), 7),
        )
        lines.append(" ".join(row))
    slo = overview.get("slo") or {}
    if slo:
        lines.append("")
        lines.append("SLO (router, rolling window)")
        for kind in sorted(slo):
            entry = slo[kind]
            parts = [
                f"  {kind:<8} p50 {entry.get('p50', 0) * 1e3:8.2f}ms",
                f"p99 {entry.get('p99', 0) * 1e3:8.2f}ms",
                f"p999 {entry.get('p999', 0) * 1e3:8.2f}ms",
                f"n {entry.get('n', 0):>7}",
            ]
            if "burn_rate" in entry:
                parts.append(
                    f"burn {entry['burn_rate']:5.2f} "
                    f"(target {entry['target_latency'] * 1e3:.1f}ms"
                    f"@p{entry['target_quantile']:g})"
                )
            lines.append(" ".join(parts))
    return "\n".join(lines) + "\n"


def run_top(
    source,
    interval: float = 1.0,
    iterations: "int | None" = None,
    out=None,
) -> None:
    """Clear-and-redraw loop: ``source()`` → :func:`render_top` → sleep.

    ``iterations=None`` runs until interrupted (Ctrl-C exits cleanly);
    a finite count is the test/CI mode.  ``out`` defaults to stdout.
    """
    stream = out if out is not None else sys.stdout
    prev = None
    n = 0
    try:
        while iterations is None or n < iterations:
            overview = source()
            stream.write(_CLEAR + render_top(overview, prev, interval))
            stream.flush()
            prev = overview
            n += 1
            if iterations is not None and n >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
