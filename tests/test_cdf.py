"""Unit tests for the CDF / Kolmogorov-Smirnov machinery of Section III."""

import numpy as np
import pytest
from scipy import stats

from repro.spatial.cdf import (
    dissimilarity,
    empirical_cdf,
    ks_distance,
    ks_distance_reference,
    similarity,
    uniform_dissimilarity,
)


class TestEmpiricalCDF:
    def test_basic_values(self):
        keys = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(
            empirical_cdf(keys, np.array([0.5, 1.0, 2.5, 4.0, 9.0])),
            [0.0, 0.25, 0.5, 1.0, 1.0],
        )

    def test_unsorted_input(self):
        keys = np.array([3.0, 1.0, 2.0])
        assert empirical_cdf(keys, np.array([1.5]))[0] == pytest.approx(1 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.empty(0), np.array([0.0]))


class TestKSDistance:
    def test_identical_sets(self):
        keys = np.random.default_rng(0).random(100)
        assert ks_distance(keys, keys) == pytest.approx(0.0)

    def test_disjoint_sets(self):
        a = np.zeros(10)
        b = np.ones(10)
        assert ks_distance(a, b) == pytest.approx(1.0)

    def test_matches_reference_on_random_sets(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            small = rng.random(rng.integers(1, 40))
            large = rng.random(rng.integers(50, 400))
            fast = ks_distance(small, large)
            assert fast == pytest.approx(ks_distance_reference(small, large), abs=1e-12)

    def test_matches_scipy_two_sample(self):
        rng = np.random.default_rng(2)
        a = rng.random(80)
        b = rng.normal(0.5, 0.2, 500)
        expected = stats.ks_2samp(a, b).statistic
        assert ks_distance(a, b) == pytest.approx(expected, abs=1e-12)

    def test_with_duplicates(self):
        a = np.array([0.5, 0.5, 0.5])
        b = np.array([0.25, 0.5, 0.5, 0.75])
        assert ks_distance(a, b) == pytest.approx(ks_distance_reference(a, b), abs=1e-12)

    def test_assume_sorted_flag(self):
        a = np.sort(np.random.default_rng(3).random(30))
        b = np.sort(np.random.default_rng(4).random(300))
        assert ks_distance(a, b, assume_sorted=True) == pytest.approx(
            ks_distance(a, b), abs=1e-15
        )

    def test_symmetry_of_statistic(self):
        # KS distance is symmetric even though our algorithm scans the
        # small side only.
        rng = np.random.default_rng(5)
        a = rng.random(20)
        b = rng.normal(0.4, 0.3, 200)
        assert ks_distance(a, b) == pytest.approx(ks_distance_reference(b, a), abs=1e-12)


class TestSimilarity:
    def test_definition_2(self):
        a = np.random.default_rng(6).random(50)
        b = np.random.default_rng(7).random(500)
        assert similarity(a, b) == pytest.approx(1.0 - ks_distance(a, b))
        assert dissimilarity(a, b) == pytest.approx(ks_distance(a, b))

    def test_bounds(self):
        a = np.random.default_rng(8).random(30)
        b = np.random.default_rng(9).random(300)
        assert 0.0 <= ks_distance(a, b) <= 1.0


class TestUniformDissimilarity:
    def test_uniform_keys_near_zero(self):
        keys = np.linspace(0, 1, 10_000)
        assert uniform_dissimilarity(keys) < 0.01

    def test_skewed_keys_large(self):
        keys = np.linspace(0, 1, 10_000) ** 8
        assert uniform_dissimilarity(keys) > 0.4

    def test_all_equal_keys(self):
        assert uniform_dissimilarity(np.full(10, 3.0)) == 0.0

    def test_matches_ks_test_against_uniform(self):
        rng = np.random.default_rng(10)
        keys = rng.random(2_000) ** 2
        lo, hi = keys.min(), keys.max()
        expected = stats.kstest(keys, stats.uniform(lo, hi - lo).cdf).statistic
        assert uniform_dissimilarity(keys) == pytest.approx(expected, abs=1e-9)

    def test_controlled_delta_recovered(self):
        """Generated sets with target distance delta measure back as delta."""
        from repro.data.controlled import keys_with_uniform_distance

        for delta in (0.1, 0.3, 0.5, 0.7):
            keys = keys_with_uniform_distance(20_000, delta, seed=1)
            uniform = np.random.default_rng(0).random(200_000)
            measured = ks_distance(keys, uniform)
            assert measured == pytest.approx(delta, abs=0.02)
