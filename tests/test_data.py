"""Unit tests for the data generators and data set registry."""

import numpy as np
import pytest

from repro.data import DATASETS, load_dataset
from repro.data.controlled import (
    dataset_with_uniform_distance,
    keys_with_uniform_distance,
    population_cdf,
)
from repro.data.generators import gaussian_mixture, skewed, uniform
from repro.data.real_like import nyc_like, osm_like, tpch_like


class TestGenerators:
    def test_uniform_shape_and_range(self):
        pts = uniform(1_000, d=3, seed=0)
        assert pts.shape == (1_000, 3)
        assert np.all((pts >= 0) & (pts <= 1))

    def test_uniform_is_uniform(self):
        pts = uniform(20_000, seed=1)
        # Each quadrant holds ~25% of points.
        counts = [
            ((pts[:, 0] < 0.5) & (pts[:, 1] < 0.5)).mean(),
            ((pts[:, 0] >= 0.5) & (pts[:, 1] >= 0.5)).mean(),
        ]
        assert all(abs(c - 0.25) < 0.02 for c in counts)

    def test_skewed_construction(self):
        """Skewed = Uniform with y -> y^4 (the HRR construction)."""
        base = uniform(5_000, seed=2)
        sk = skewed(5_000, s=4.0, seed=2)
        np.testing.assert_array_equal(sk[:, 0], base[:, 0])
        np.testing.assert_allclose(sk[:, 1], base[:, 1] ** 4)

    def test_skewed_concentrates_near_zero(self):
        sk = skewed(10_000, seed=3)
        assert (sk[:, 1] < 0.1).mean() > 0.5

    def test_gaussian_mixture_clusters(self):
        pts = gaussian_mixture(5_000, n_clusters=3, spread=0.01, seed=4)
        assert pts.shape == (5_000, 2)
        assert np.all((pts >= 0) & (pts <= 1))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uniform(-1)
        with pytest.raises(ValueError):
            skewed(10, s=0.0)
        with pytest.raises(ValueError):
            gaussian_mixture(10, n_clusters=0)


class TestControlled:
    def test_population_cdf_distance_is_delta(self):
        x = np.linspace(0, 1, 10_001)
        for delta in (0.0, 0.2, 0.5, 0.8):
            gap = np.abs(population_cdf(x, delta) - x).max()
            assert gap == pytest.approx(delta, abs=1e-3)

    def test_cdf_monotone(self):
        x = np.linspace(0, 1, 1_000)
        for delta in (0.3, 0.9):
            assert np.all(np.diff(population_cdf(x, delta)) >= 0)

    def test_keys_within_unit_interval(self):
        keys = keys_with_uniform_distance(1_000, 0.5, seed=0)
        assert np.all((keys >= 0) & (keys <= 1))

    def test_delta_zero_is_uniformish(self):
        keys = keys_with_uniform_distance(5_000, 0.0, seed=0)
        from repro.spatial.cdf import uniform_dissimilarity

        assert uniform_dissimilarity(keys) < 0.02

    def test_dataset_marginals(self):
        pts = dataset_with_uniform_distance(5_000, 0.6, d=2, seed=1)
        from repro.spatial.cdf import uniform_dissimilarity

        for dim in range(2):
            measured = uniform_dissimilarity(pts[:, dim])
            assert measured == pytest.approx(0.6, abs=0.05)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            keys_with_uniform_distance(10, 1.0)
        with pytest.raises(ValueError):
            keys_with_uniform_distance(10, -0.1)

    def test_empty(self):
        assert len(dataset_with_uniform_distance(0, 0.5)) == 0


class TestRealLike:
    @pytest.mark.parametrize("gen", [osm_like, tpch_like, nyc_like])
    def test_shape_and_range(self, gen):
        pts = gen(3_000, seed=0)
        assert pts.shape == (3_000, 2)
        assert np.all((pts >= 0) & (pts <= 1))

    def test_osm_is_clustered(self):
        """OSM-like data is much more skewed than uniform (hub structure)."""
        pts = osm_like(10_000, seed=1)
        hist, _, _ = np.histogram2d(pts[:, 0], pts[:, 1], bins=16)
        uniform_hist, _, _ = np.histogram2d(*uniform(10_000, seed=1).T, bins=16)
        assert hist.max() > 3 * uniform_hist.max()

    def test_tpch_is_lattice(self):
        pts = tpch_like(5_000, seed=2)
        assert len(np.unique(pts[:, 0])) <= 50

    def test_nyc_extreme_skew(self):
        pts = nyc_like(10_000, seed=3)
        hist, _, _ = np.histogram2d(pts[:, 0], pts[:, 1], bins=20)
        # Most mass concentrates in a few cells (Manhattan).
        top = np.sort(hist.ravel())[::-1]
        assert top[:20].sum() > 0.5 * len(pts)


class TestRegistry:
    def test_all_names_present(self):
        assert set(DATASETS) == {"Uniform", "Skewed", "OSM1", "OSM2", "TPC-H", "NYC"}

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_load(self, name):
        pts = load_dataset(name, 500)
        assert pts.shape == (500, 2)

    def test_osm1_differs_from_osm2(self):
        a = load_dataset("OSM1", 2_000)
        b = load_dataset("OSM2", 2_000)
        assert not np.array_equal(a, b)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("Mars", 10)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            load_dataset("OSM1", -5)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            load_dataset("NYC", 100, seed=3), load_dataset("NYC", 100, seed=3)
        )
