"""The map-and-sort / predict-and-scan contract shared by all base indices.

Section III's applicability conditions become code here:

- :class:`TrainedModel` is an index model ``M``: it predicts a storage
  address from a mapped key and carries the empirical error bounds
  ``err_l``/``err_u`` measured over the *full* data set, so a scan of
  ``[M(q.key) - err_l, M(q.key) + err_u]`` is guaranteed to contain any
  indexed point (predict-and-scan correctness).
- :class:`ModelBuilder` is the seam ELSI plugs into.  Its
  :meth:`~ModelBuilder.build_model` receives the key-sorted data and returns
  a trained model; :class:`OriginalBuilder` (the paper's OG) trains on the
  full set, while ELSI's build processor trains on an engineered subset
  ``D_S`` (Algorithm 1).
- :class:`LearnedSpatialIndex` is the query-facing API: point, window and
  kNN queries plus build statistics.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.ml.ffn import FFN
from repro.ml.trainer import TrainConfig, train_regressor
from repro.obs.trace import span as _span
from repro.perf.executor import MapExecutor, resolve_executor
from repro.perf.fused_infer import FUSION_DTYPES, resolve_dtype
from repro.spatial.rect import Rect

__all__ = [
    "BuildStats",
    "FitJob",
    "FitOutcome",
    "LearnedSpatialIndex",
    "MapFn",
    "ModelBuilder",
    "OriginalBuilder",
    "QueryStats",
    "TrainedModel",
    "run_fit_job",
]

#: Keys per chunk when the error-bound pass is dispatched through an
#: executor (the M(n) full-set prediction of Section VI-B).
BOUND_CHUNK = 32_768

# A base index's map() for one partition: coordinates -> mapped keys.
MapFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class BuildStats:
    """Per-build timing decomposition matching Section VI.

    ``prepare_seconds`` is ``cost_dp`` (mapping + sorting), ``train_seconds``
    is ``T(|D_S|)``, ``extra_seconds`` is the method-specific ``cost_ex``
    (sampling, clustering, partitioning, RL search, ...), and
    ``error_bound_seconds`` the ``M(n)`` full-set prediction pass.
    """

    prepare_seconds: float = 0.0
    train_seconds: float = 0.0
    extra_seconds: float = 0.0
    error_bound_seconds: float = 0.0
    train_set_size: int = 0
    n_models: int = 0
    methods_used: dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (
            self.prepare_seconds
            + self.train_seconds
            + self.extra_seconds
            + self.error_bound_seconds
        )

    def merge(self, other: "BuildStats") -> None:
        """Accumulate another model's build costs (multi-model indices)."""
        self.prepare_seconds += other.prepare_seconds
        self.train_seconds += other.train_seconds
        self.extra_seconds += other.extra_seconds
        self.error_bound_seconds += other.error_bound_seconds
        self.train_set_size += other.train_set_size
        self.n_models += other.n_models
        for name, count in other.methods_used.items():
            self.methods_used[name] = self.methods_used.get(name, 0) + count


@dataclass
class QueryStats:
    """Counters accumulated across queries (reset with :meth:`reset`)."""

    model_invocations: int = 0
    points_scanned: int = 0
    queries: int = 0

    def reset(self) -> None:
        self.model_invocations = 0
        self.points_scanned = 0
        self.queries = 0


class TrainedModel:
    """An index model ``M`` with empirical error bounds.

    Predicts the sorted position (address) of a mapped key among the ``n``
    indexed keys.  Keys are min-max normalised to [0, 1] before hitting the
    network; predictions are de-normalised to integer positions.

    Parameters
    ----------
    net:
        Any object with a ``predict(x) -> y`` over 2-D float input; an
        :class:`~repro.ml.ffn.FFN` in practice.
    key_lo, key_hi:
        Normalisation range, taken from the *full* data set so queries and
        error-bound measurement agree.
    n_indexed:
        Number of indexed points (the address space size).
    """

    def __init__(
        self,
        net: FFN,
        key_lo: float,
        key_hi: float,
        n_indexed: int,
        method_name: str = "OG",
        train_set_size: int = 0,
    ) -> None:
        if n_indexed < 0:
            raise ValueError(f"n_indexed must be >= 0, got {n_indexed}")
        self.net = net
        self.key_lo = float(key_lo)
        self.key_hi = float(key_hi)
        self.n_indexed = int(n_indexed)
        self.method_name = method_name
        self.train_set_size = train_set_size
        self.err_l = 0
        self.err_u = 0
        self.invocations = 0

    # ------------------------------------------------------------------
    def normalise(self, keys: np.ndarray) -> np.ndarray:
        """Min-max key normalisation (degenerate range maps to 0)."""
        keys = np.asarray(keys, dtype=np.float64)
        span = self.key_hi - self.key_lo
        if span <= 0.0:
            return np.zeros_like(keys)
        return (keys - self.key_lo) / span

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """Predicted positions without invocation accounting (pure)."""
        if self.n_indexed == 0:
            return np.zeros(len(keys), dtype=np.int64)
        raw = self.net.predict(self.normalise(keys)[:, None])
        pos = np.rint(raw * (self.n_indexed - 1)).astype(np.int64)
        return np.clip(pos, 0, self.n_indexed - 1)

    def predict_positions(self, keys: np.ndarray) -> np.ndarray:
        """Predicted sorted positions (clipped to [0, n-1]) for ``keys``."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.float64))
        self.invocations += len(keys)
        return self._positions(keys)

    def measure_error_bounds(
        self, all_keys_sorted: np.ndarray, executor: "MapExecutor | None" = None
    ) -> None:
        """Record ``err_l``/``err_u`` over the full sorted key set.

        Guarantees that for every indexed key at true position ``i`` with
        prediction ``p``: ``i in [p - err_l, p + err_u]`` — the invariant the
        predict-and-scan paradigm relies on (Section III, condition 2).

        The full-set prediction pass is embarrassingly parallel over key
        chunks; passing a thread/process ``executor`` dispatches it chunked
        with bit-identical results (predictions are elementwise).
        """
        n = len(all_keys_sorted)
        if n == 0:
            self.err_l = self.err_u = 0
            return
        chunked = (
            executor is not None
            and executor.backend in ("thread", "process")
            and n > BOUND_CHUNK
        )
        if not chunked:
            predicted = self.predict_positions(all_keys_sorted)
            over = predicted - np.arange(n)  # positive: predicted past the point
            self.err_l = int(max(0, over.max()))
            self.err_u = int(max(0, (-over).max()))
            return
        jobs = [
            (self, start, all_keys_sorted[start : start + BOUND_CHUNK])
            for start in range(0, n, BOUND_CHUNK)
        ]
        extremes = executor.map(_bound_chunk, jobs)
        self.invocations += n
        self.err_l = int(max(0, max(over for over, _ in extremes)))
        self.err_u = int(max(0, max(under for _, under in extremes)))

    def search_range(self, key: float) -> tuple[int, int]:
        """Half-open scan range [lo, hi) for ``key`` under the error bounds."""
        pos = int(self.predict_positions(np.array([key]))[0])
        return max(0, pos - self.err_l), min(self.n_indexed, pos + self.err_u + 1)

    def search_ranges(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`search_range` over a key batch."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.float64))
        pos = self.predict_positions(keys)
        lo = np.maximum(pos - self.err_l, 0)
        hi = np.minimum(pos + self.err_u + 1, self.n_indexed)
        return lo, hi

    @property
    def error_width(self) -> int:
        """``err_l + err_u`` — the paper's |Error| column in Table I."""
        return self.err_l + self.err_u


def _bound_chunk(job: tuple["TrainedModel", int, np.ndarray]) -> tuple[int, int]:
    """Max over/under-prediction of one key chunk (module-level so the
    process backend can pickle it; pure, so dispatch order is irrelevant)."""
    model, start, keys = job
    predicted = model._positions(np.asarray(keys, dtype=np.float64))
    over = predicted - (start + np.arange(len(keys)))
    return int(over.max()), int((-over).max())


@dataclass
class FitJob:
    """One self-contained model-fit unit: everything ``run_fit_job`` needs.

    Builders *prepare* jobs serially (method choice and ``compute_set`` may
    draw from shared RNG state, so preparation order must be the input
    order) and *run* them through an executor — jobs are pure functions of
    their fields, which is what makes thread/process dispatch bit-identical
    to serial.
    """

    train_keys: np.ndarray
    train_ranks: np.ndarray
    key_lo: float
    key_hi: float
    n_indexed: int
    sorted_keys: np.ndarray  # full partition, for the error-bound pass
    hidden: int
    train_config: TrainConfig | None
    method_name: str
    seed: int
    pretrained_state: dict | None = None
    extra_seconds: float = 0.0


@dataclass
class FitOutcome:
    """A trained model plus the cost components the job incurred."""

    model: TrainedModel
    train_seconds: float
    error_bound_seconds: float


def run_fit_job(job: FitJob, executor: "MapExecutor | None" = None) -> FitOutcome:
    """Train (or load) one model and measure its error bounds."""
    with _span(
        "build.train", method=job.method_name, train_size=len(job.train_keys)
    ):
        if job.pretrained_state is not None:
            # MR: load the pre-trained network; no online training (T = 0).
            net = FFN([1, job.hidden, 1], seed=job.seed)
            net.load_state_dict(job.pretrained_state)
            model = TrainedModel(
                net=net,
                key_lo=job.key_lo,
                key_hi=job.key_hi,
                n_indexed=job.n_indexed,
                method_name=job.method_name,
                train_set_size=len(job.train_keys),
            )
            train_seconds = 0.0
        else:
            model, train_seconds = fit_cdf_model(
                job.train_keys,
                job.train_ranks,
                key_lo=job.key_lo,
                key_hi=job.key_hi,
                n_indexed=job.n_indexed,
                hidden=job.hidden,
                train_config=job.train_config,
                method_name=job.method_name,
                seed=job.seed,
            )
    started = time.perf_counter()
    with _span("build.error_bounds", n=job.n_indexed) as eb_span:
        model.measure_error_bounds(job.sorted_keys, executor=executor)
        eb_span.set(err_l=model.err_l, err_u=model.err_u)
    return FitOutcome(
        model=model,
        train_seconds=train_seconds,
        error_bound_seconds=time.perf_counter() - started,
    )


class ModelBuilder(ABC):
    """Strategy that turns key-sorted data into a :class:`TrainedModel`.

    This is ELSI's integration point: base indices never train directly,
    they ask their builder.  The builder receives the *sorted* mapped keys
    and the points in the same order (Algorithm 1 runs after map + sort).

    ``map_fn`` is the base index's ``map()`` for this partition: it turns
    arbitrary coordinates into mapped keys.  Build methods that synthesise
    points not in ``D`` (CL, RL) need it; an index whose mapping depends on
    ``D`` itself (LISA's data-derived grid) passes ``None``, which is
    exactly the paper's applicability restriction for those methods.

    Multi-model indices call :meth:`build_models` with all partitions at
    once; jobs are prepared serially (deterministic RNG order) and then
    dispatched through the builder's :class:`~repro.perf.executor.MapExecutor`
    (``executor`` attribute, env-overridable via ``REPRO_PARALLELISM``).
    """

    #: Executor (or backend spec string) for :meth:`build_models` dispatch.
    executor: "MapExecutor | str | None" = None

    @abstractmethod
    def build_model(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        stats: BuildStats,
        map_fn: "MapFn | None" = None,
    ) -> TrainedModel:
        """Train an index model for the given partition and record costs."""

    def prepare_fit_job(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        map_fn: "MapFn | None" = None,
    ) -> FitJob:
        """Turn one partition into a dispatchable :class:`FitJob`.

        Builders that cannot express their work as a pure job (custom
        subclasses) keep the default, which makes :meth:`build_models`
        fall back to a serial ``build_model`` loop.
        """
        raise NotImplementedError

    def build_models(
        self,
        partitions: list[tuple[np.ndarray, np.ndarray]],
        stats: BuildStats,
        map_fn: "MapFn | list[MapFn | None] | None" = None,
        executor: "MapExecutor | None" = None,
    ) -> list[TrainedModel]:
        """Build one model per ``(sorted_keys, sorted_points)`` partition.

        ``map_fn`` is either one mapping shared by every partition (RMI
        stage-2 leaves over a global curve) or a list with one mapping per
        partition (RSMI's node-local curves, where each sibling has its own
        bounding box).

        Results are returned in partition order and are identical across
        the serial/thread/process backends; the fused backend trains all
        same-architecture jobs in one vectorised pass
        (:mod:`repro.perf.fused`) and then measures error bounds through
        the standard per-model path, preserving predict-and-scan
        correctness.
        """
        if isinstance(map_fn, list):
            if len(map_fn) != len(partitions):
                raise ValueError(
                    f"got {len(map_fn)} map functions for {len(partitions)} partitions"
                )
            map_fns = map_fn
        else:
            map_fns = [map_fn] * len(partitions)
        ex = resolve_executor(executor if executor is not None else self.executor)
        with _span(
            "build.models", partitions=len(partitions), backend=ex.backend
        ):
            try:
                jobs = [
                    self.prepare_fit_job(keys, pts, mf)
                    for (keys, pts), mf in zip(partitions, map_fns)
                ]
            except NotImplementedError:
                return [
                    self.build_model(keys, pts, stats, mf)
                    for (keys, pts), mf in zip(partitions, map_fns)
                ]
            if ex.backend == "fused":
                outcomes = _run_fit_jobs_fused(jobs)
            else:
                outcomes = ex.map(run_fit_job, jobs)
            models = []
            for job, outcome in zip(jobs, outcomes):
                _merge_fit_costs(stats, job, outcome)
                models.append(outcome.model)
            return models


def _merge_fit_costs(stats: BuildStats, job: FitJob, outcome: FitOutcome) -> None:
    """Accumulate one job's cost decomposition, in input order."""
    stats.extra_seconds += job.extra_seconds
    stats.train_seconds += outcome.train_seconds
    stats.error_bound_seconds += outcome.error_bound_seconds
    stats.train_set_size += len(job.train_keys)
    stats.n_models += 1
    stats.methods_used[job.method_name] = (
        stats.methods_used.get(job.method_name, 0) + 1
    )


def _run_fit_jobs_fused(jobs: list[FitJob]) -> list[FitOutcome]:
    """Run fit jobs with fused (batched) training where possible.

    Jobs sharing an architecture and train config are trained in one
    vectorised loop; pretrained (MR) and odd-one-out jobs fall back to the
    serial path.  The fused wall-clock is split evenly across its jobs so
    ``BuildStats.train_seconds`` still totals the real elapsed time.
    """
    from repro.perf.fused import train_regressors_fused

    outcomes: list[FitOutcome | None] = [None] * len(jobs)
    groups: dict[tuple, list[int]] = {}
    for i, job in enumerate(jobs):
        if job.pretrained_state is not None:
            outcomes[i] = run_fit_job(job)
            continue
        groups.setdefault((job.hidden, job.train_config), []).append(i)

    for (hidden, train_config), members in groups.items():
        if len(members) == 1:
            i = members[0]
            outcomes[i] = run_fit_job(jobs[i])
            continue
        models = []
        xs, ys = [], []
        for i in members:
            job = jobs[i]
            model = TrainedModel(
                net=FFN([1, hidden, 1], seed=job.seed),
                key_lo=job.key_lo,
                key_hi=job.key_hi,
                n_indexed=job.n_indexed,
                method_name=job.method_name,
                train_set_size=len(job.train_keys),
            )
            models.append(model)
            xs.append(model.normalise(np.asarray(job.train_keys, dtype=np.float64)))
            ys.append(np.asarray(job.train_ranks, dtype=np.float64))
        result = train_regressors_fused(
            [m.net for m in models], xs, ys, train_config or TrainConfig()
        )
        per_job_train = result.elapsed_seconds / len(members)
        for i, model in zip(members, models):
            started = time.perf_counter()
            model.measure_error_bounds(jobs[i].sorted_keys)
            outcomes[i] = FitOutcome(
                model=model,
                train_seconds=per_job_train,
                error_bound_seconds=time.perf_counter() - started,
            )
    assert all(o is not None for o in outcomes)
    return outcomes  # type: ignore[return-value]


def fit_cdf_model(
    train_keys: np.ndarray,
    train_ranks: np.ndarray,
    key_lo: float,
    key_hi: float,
    n_indexed: int,
    hidden: int = 16,
    train_config: TrainConfig | None = None,
    method_name: str = "OG",
    seed: int = 0,
) -> tuple[TrainedModel, float]:
    """Train an FFN on (key, rank) pairs and wrap it as a :class:`TrainedModel`.

    ``train_ranks`` must already be normalised to [0, 1].  Returns the model
    and the training wall-clock seconds (the ``T(|D_S|)`` term).
    """
    model = TrainedModel(
        net=FFN([1, hidden, 1], seed=seed),
        key_lo=key_lo,
        key_hi=key_hi,
        n_indexed=n_indexed,
        method_name=method_name,
        train_set_size=len(train_keys),
    )
    x = model.normalise(np.asarray(train_keys, dtype=np.float64))
    result = train_regressor(model.net, x, np.asarray(train_ranks), train_config)
    return model, result.elapsed_seconds


class OriginalBuilder(ModelBuilder):
    """The paper's OG method: train on the full data set (no reduction)."""

    def __init__(
        self,
        train_config: TrainConfig | None = None,
        hidden: int = 16,
        seed: int = 0,
        executor: "MapExecutor | str | None" = None,
        dtype: str = "float64",
    ) -> None:
        self.train_config = train_config
        self.hidden = hidden
        self.seed = seed
        self.executor = executor
        #: Inference/key precision for models built here; ``REPRO_DTYPE``
        #: overrides, matching ``ELSIModelBuilder`` so OG builds honour the
        #: same environment knob.
        self.dtype = resolve_dtype(dtype)

    def prepare_fit_job(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        map_fn: MapFn | None = None,
    ) -> FitJob:
        n = len(sorted_keys)
        if n == 0:
            raise ValueError("cannot build a model over an empty partition")
        ranks = np.arange(n) / max(n - 1, 1)
        return FitJob(
            train_keys=sorted_keys,
            train_ranks=ranks,
            key_lo=float(sorted_keys[0]),
            key_hi=float(sorted_keys[-1]),
            n_indexed=n,
            sorted_keys=sorted_keys,
            hidden=self.hidden,
            train_config=self.train_config,
            method_name="OG",
            seed=self.seed,
        )

    def build_model(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        stats: BuildStats,
        map_fn: MapFn | None = None,
    ) -> TrainedModel:
        job = self.prepare_fit_job(sorted_keys, sorted_points, map_fn)
        outcome = run_fit_job(job, executor=resolve_executor(self.executor))
        _merge_fit_costs(stats, job, outcome)
        return outcome.model


class LearnedSpatialIndex(ABC):
    """Query-facing API shared by ZM, ML-Index, RSMI and LISA.

    Subclasses implement :meth:`build` (map + sort + train through the
    builder) and the three query kinds.  ``build_stats`` and ``query_stats``
    expose the cost counters every experiment reports.
    """

    name: str = "base"

    def __init__(self, builder: ModelBuilder | None = None, block_size: int = 100) -> None:
        self.builder = builder or OriginalBuilder()
        self.block_size = block_size
        self.build_stats = BuildStats()
        self.query_stats = QueryStats()
        self.bounds: Rect | None = None
        self.n_points = 0
        #: Storage dtype for mapped keys — follows the builder's model
        #: precision (one knob: ``ELSIConfig.dtype`` / ``REPRO_DTYPE``), so
        #: float32 models index float32 key columns with bounds measured
        #: over the quantised keys.  Query-side keys must pass through the
        #: same cast (``map()`` does) before model prediction or store
        #: search.
        self.key_dtype = np.dtype(
            FUSION_DTYPES[getattr(self.builder, "dtype", "float64")]
        )

    # ------------------------------------------------------------------
    @abstractmethod
    def build(self, points: np.ndarray) -> "LearnedSpatialIndex":
        """Index ``points``; returns self for chaining."""

    @abstractmethod
    def point_query(self, point: np.ndarray) -> bool:
        """Whether ``point`` (exact coordinates) is indexed."""

    @abstractmethod
    def window_query(self, window: Rect) -> np.ndarray:
        """Points inside ``window`` as an (m, d) array (may be approximate)."""

    @abstractmethod
    def knn_query(self, point: np.ndarray, k: int) -> np.ndarray:
        """The ``k`` nearest indexed points to ``point`` (may be approximate)."""

    @abstractmethod
    def indexed_points(self) -> np.ndarray:
        """Every indexed point, exactly (used by the update processor)."""

    def point_queries(self, points: np.ndarray) -> np.ndarray:
        """Batch membership test; returns one bool per row.

        The default loops over :meth:`point_query`; store-backed indices
        override it with vectorised model predictions (one forward pass
        for the whole batch).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(pts) == 0:
            return np.zeros(0, dtype=bool)
        return np.array([self.point_query(p) for p in pts], dtype=bool)

    def knn_queries(self, points: np.ndarray, k: int) -> list[np.ndarray]:
        """Batch kNN: one ``(m, d)`` result array per query row.

        The default loops over :meth:`knn_query`; indices answering kNN by
        the expanding-window strategy override it with
        :meth:`_knn_by_expanding_window_batch`, which shares the radius
        expansion and distance ranking across the whole batch.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return [self.knn_query(p, k) for p in pts]

    def window_queries(self, windows: "list[Rect]") -> list[np.ndarray]:
        """Batch window queries: one ``(m, d)`` result array per window.

        The default loops over :meth:`window_query`; store-backed indices
        override it with a vectorised path that predicts scan ranges for
        every window corner in one model pass (see ``ZMIndex``).
        """
        return [self.window_query(w) for w in windows]

    def insert(self, point: np.ndarray) -> None:
        """Built-in insertion procedure (Section IV-B2 / Figure 15).

        Inserts without retraining: the point lands at its sorted key
        position and scan ranges widen conservatively, so predict-and-scan
        stays correct while queries slow down as insertions accumulate —
        the degradation that motivates the rebuild predictor.  Subclasses
        refine this (RSMI adds local models, Figure 1).
        """
        raise NotImplementedError(f"{self.name} has no built-in insertion")

    @abstractmethod
    def map(self, points: np.ndarray) -> np.ndarray:
        """The base index's map(): coordinates to one-dimensional keys."""

    # ------------------------------------------------------------------
    def _check_built(self) -> None:
        if self.bounds is None:
            raise RuntimeError(f"{self.name} index is not built yet")

    @staticmethod
    def _prepare_points(points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("need a non-empty (n, d) array of points")
        if pts.shape[1] < 2:
            raise ValueError("spatial indices need d >= 2")
        return pts

    def _knn_by_expanding_window(self, point: np.ndarray, k: int) -> np.ndarray:
        """kNN via growing window queries (the paper's learned-index strategy).

        Starts from a window sized for the expected k-point density and
        doubles the side length until at least k points fall inside *and*
        the k-th distance is covered by the window's inradius (so no closer
        point can be outside the window).
        """
        self._check_built()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        q = np.asarray(point, dtype=np.float64)
        assert self.bounds is not None
        d = self.bounds.ndim
        volume = self.bounds.area()
        density = self.n_points / volume if volume > 0 else self.n_points
        side = (k / max(density, 1e-12)) ** (1.0 / d)
        max_side = float(self.bounds.extents.max()) * 2.0 + 1e-9
        while True:
            window = Rect.centered(q, side)
            candidates = self.window_query(window)
            if len(candidates) >= k:
                diff = candidates - q
                dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                order = np.argsort(dist, kind="stable")
                if dist[order[k - 1]] <= side / 2.0 or side > max_side:
                    return candidates[order[:k]]
            elif side > max_side:
                # Fewer than k points indexed in total: return what exists.
                if len(candidates) == 0:
                    return np.empty((0, d))
                diff = candidates - q
                dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                order = np.argsort(dist, kind="stable")
                return candidates[order]
            side *= 2.0

    def _knn_by_expanding_window_batch(
        self, points: np.ndarray, k: int
    ) -> list[np.ndarray]:
        """Vectorised expanding-window kNN over a query batch.

        The per-query radius-expansion loop becomes one loop over
        *expansion rounds* shared by the whole batch: each round gathers
        the active queries' window candidates, ranks every candidate in a
        single flattened distance computation + lexsort (owner-major,
        distance-minor — stable, so results match the per-query path
        exactly), retires the queries whose k-th distance is covered by
        the window inradius, and doubles the remaining sides.  Queries
        finish independently, so one slow region never re-scans the rest.
        """
        self._check_built()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        b = len(pts)
        if b == 0:
            return []
        with _span("query.knn_batch", queries=b, k=k):
            return self._knn_batch_inner(pts, k)

    def _knn_batch_inner(self, pts: np.ndarray, k: int) -> list[np.ndarray]:
        b = len(pts)
        assert self.bounds is not None
        d = self.bounds.ndim
        volume = self.bounds.area()
        density = self.n_points / volume if volume > 0 else self.n_points
        side = np.full(b, (k / max(density, 1e-12)) ** (1.0 / d))
        max_side = float(self.bounds.extents.max()) * 2.0 + 1e-9
        results: list[np.ndarray | None] = [None] * b
        active = np.arange(b)
        while len(active):
            # One batched window call per expansion round: indices with a
            # fused window path (and a fused inference engine underneath)
            # answer every active query's candidate window in one pass.
            cand = self.window_queries(
                [Rect.centered(pts[qi], float(side[qi])) for qi in active]
            )
            counts = np.array([len(c) for c in cand], dtype=np.int64)
            offsets = np.concatenate(([0], np.cumsum(counts)))
            if counts.sum():
                flat = np.vstack([c for c in cand if len(c)])
                owner = np.repeat(np.arange(len(active)), counts)
                diff = flat - pts[active][owner]
                dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
                order = np.lexsort((dist, owner))
                flat = flat[order]
                dist = dist[order]
            still: list[int] = []
            for j, qi in enumerate(active):
                c = int(counts[j])
                s = float(side[qi])
                start = int(offsets[j])
                if c >= k:
                    if dist[start + k - 1] <= s / 2.0 or s > max_side:
                        results[qi] = flat[start : start + k].copy()
                        continue
                elif s > max_side:
                    results[qi] = (
                        flat[start : start + c].copy() if c else np.empty((0, d))
                    )
                    continue
                still.append(int(qi))
            if still:
                side[still] *= 2.0
            active = np.array(still, dtype=np.int64)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]
