"""Figure 6 — method selector accuracy vs lambda.

(a) FFN selector accuracy as the training cardinality cap u grows.
(b) FFN vs RFR / RFC / DTR / DTC selectors.

Paper shapes to hold: accuracy is highest at large u; FFN >= tree selectors
(especially for lambda < 0.6); the hardest region is lambda ~ 0.6 where
build and query costs weigh equally.
"""

from repro.bench.experiments import fig06_selector_accuracy
from repro.bench.harness import format_table


def test_fig06_selector_accuracy(ctx, benchmark):
    result = benchmark.pedantic(
        fig06_selector_accuracy, args=(ctx,), rounds=1, iterations=1
    )

    lams = [lam for lam, _ in next(iter(result["fig6a"].values()))]
    rows_a = [
        [f"u={u}"] + [f"{acc:.2f}" for _lam, acc in series]
        for u, series in sorted(result["fig6a"].items())
    ]
    print()
    print(format_table(["cap"] + [f"lam={l}" for l in lams], rows_a,
                       title="Figure 6(a): FFN selector accuracy vs lambda"))
    rows_b = [
        [model] + [f"{acc:.2f}" for _lam, acc in series]
        for model, series in result["fig6b"].items()
    ]
    print(format_table(["model"] + [f"lam={l}" for l in lams], rows_b,
                       title="Figure 6(b): selector model comparison"))

    # Shape assertions (loose: measured speedups are noisy at small scale).
    ffn = dict(result["fig6b"]["FFN"])
    assert ffn[1.0] >= 0.5, "FFN should learn the build-time ordering"
    mean_acc = {m: sum(a for _l, a in s) / len(s) for m, s in result["fig6b"].items()}
    assert mean_acc["FFN"] >= 0.3
