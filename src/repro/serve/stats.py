"""The server's stats surface: per-stage counters + latency histograms.

Everything here is cheap enough to record on the hot path (a lock, a few
integer increments, one bucket index per latency sample) and structured
enough for benchmarks and tests to assert on: :meth:`ServerStats.snapshot`
returns a plain JSON-able dict.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["LatencyHistogram", "ServerStats"]


class LatencyHistogram:
    """Log-spaced latency histogram (1 µs .. ~134 s, doubling buckets).

    Percentiles are estimated from bucket upper bounds — pessimistic by at
    most one doubling, which is plenty for serving dashboards and for the
    benchmark's p50/p99 columns.  Exact count/total/max are kept alongside.
    """

    BASE = 1e-6
    N_BUCKETS = 28

    def __init__(self) -> None:
        self.counts = np.zeros(self.N_BUCKETS, dtype=np.int64)
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        bucket = 0
        scaled = seconds / self.BASE
        while scaled > 1.0 and bucket < self.N_BUCKETS - 1:
            scaled /= 2.0
            bucket += 1
        self.counts[bucket] += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def record_many(self, seconds: "list[float] | np.ndarray") -> None:
        for s in seconds:
            self.record(float(s))

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    @property
    def mean(self) -> float:
        n = self.count
        return self.total / n if n else 0.0

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the q-th percentile (q in [0, 100])."""
        n = self.count
        if n == 0:
            return 0.0
        rank = max(1, int(np.ceil(q / 100.0 * n)))
        cumulative = np.cumsum(self.counts)
        bucket = int(np.searchsorted(cumulative, rank))
        return self.BASE * (2.0 ** (bucket + 1))

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_seconds": self.mean,
            "max_seconds": self.max,
            "p50_seconds": self.percentile(50),
            "p99_seconds": self.percentile(99),
        }


class ServerStats:
    """Counters + histograms accumulated across the server's stages.

    Stages: *admission* (requests enqueued, by kind), *batching* (batches
    dispatched, their sizes), *service* (per-batch execution time), and
    the end-to-end request latency.  Updates/rebuilds/snapshots have their
    own counters so tests can assert the background machinery ran.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted: dict[str, int] = {}
        self.completed = 0
        self.errors = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_size = 0
        self.inserts = 0
        self.deletes = 0
        self.rebuilds = 0
        self.rebuild_seconds = 0.0
        self.generation_swaps = 0
        self.snapshots_saved = 0
        self.queue_wait = LatencyHistogram()
        self.service = LatencyHistogram()
        self.latency = LatencyHistogram()

    # ------------------------------------------------------------------
    def note_submit(self, kind: str) -> None:
        with self._lock:
            self.submitted[kind] = self.submitted.get(kind, 0) + 1

    def note_update(self, kind: str) -> None:
        with self._lock:
            if kind == "insert":
                self.inserts += 1
            else:
                self.deletes += 1

    def note_batch(
        self,
        size: int,
        service_seconds: float,
        queue_waits: "list[float]",
        latencies: "list[float]",
        errors: int = 0,
    ) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.completed += size - errors
            self.errors += errors
            if size > self.max_batch_size:
                self.max_batch_size = size
            self.service.record(service_seconds)
            self.queue_wait.record_many(queue_waits)
            self.latency.record_many(latencies)

    def note_rebuild(self, seconds: float) -> None:
        with self._lock:
            self.rebuilds += 1
            self.rebuild_seconds += seconds
            self.generation_swaps += 1

    def note_snapshot(self) -> None:
        with self._lock:
            self.snapshots_saved += 1

    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "submitted": dict(self.submitted),
                "completed": self.completed,
                "errors": self.errors,
                "batches": self.batches,
                "mean_batch_size": self.mean_batch_size,
                "max_batch_size": self.max_batch_size,
                "inserts": self.inserts,
                "deletes": self.deletes,
                "rebuilds": self.rebuilds,
                "rebuild_seconds": self.rebuild_seconds,
                "generation_swaps": self.generation_swaps,
                "snapshots_saved": self.snapshots_saved,
                "queue_wait": self.queue_wait.snapshot(),
                "service": self.service.snapshot(),
                "latency": self.latency.snapshot(),
            }
