"""The iDistance one-dimensional mapping (Jagadish et al., TODS 2005).

ML-Index maps each point to ``key = j * c + dist(p, o_j)`` where ``o_j`` is
the nearest of ``m`` reference points and ``c`` is a stretch constant larger
than any within-partition distance.  Sorting by this key groups points by
reference partition and, within a partition, by distance from the
reference — which is what makes range/kNN search reducible to
one-dimensional interval scans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spatial.kmeans import kmeans

__all__ = ["IDistanceMapping"]


@dataclass(frozen=True)
class IDistanceMapping:
    """A fitted iDistance mapping: reference points plus stretch constant.

    Build with :meth:`fit`; apply with :meth:`keys`.
    """

    references: np.ndarray
    stretch: float

    @staticmethod
    def fit(points: np.ndarray, n_references: int = 16, seed: int = 0) -> "IDistanceMapping":
        """Choose reference points as k-means centroids of ``points``.

        The stretch constant is set above the space diameter so partitions
        can never overlap in key space even after later insertions.

        Floating inputs keep their dtype (float32 points yield float32
        references and distances); other dtypes upcast to float64.
        """
        pts = np.asarray(points)
        if not np.issubdtype(pts.dtype, np.floating):
            pts = pts.astype(np.float64)
        if pts.ndim != 2 or len(pts) == 0:
            raise ValueError("need a non-empty (n, d) array of points")
        k = min(n_references, len(pts))
        result = kmeans(pts, k, seed=seed)
        span = pts.max(axis=0).astype(np.float64) - pts.min(axis=0).astype(np.float64)
        diameter = float(np.sqrt((span**2).sum()))
        stretch = max(diameter * 2.0, 1e-9)
        return IDistanceMapping(references=result.centroids, stretch=stretch)

    @property
    def n_references(self) -> int:
        return len(self.references)

    def nearest_reference(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(partition id, distance to it) per point."""
        pts = np.asarray(points)
        if not np.issubdtype(pts.dtype, np.floating):
            pts = pts.astype(np.float64)
        if pts.ndim == 1:
            pts = pts[None, :]
        # Blockwise distance computation to bound memory.
        ids = np.empty(len(pts), dtype=np.int64)
        dists = np.empty(len(pts), dtype=np.result_type(pts, self.references))
        r_norm = np.einsum("ij,ij->i", self.references, self.references)
        for start in range(0, len(pts), 8192):
            chunk = pts[start : start + 8192]
            scores = chunk @ self.references.T * -2.0 + r_norm
            best = np.argmin(scores, axis=1)
            ids[start : start + 8192] = best
            diff = chunk - self.references[best]
            dists[start : start + 8192] = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        return ids, dists

    def keys(self, points: np.ndarray) -> np.ndarray:
        """The iDistance key ``j * stretch + dist(p, o_j)`` per point."""
        ids, dists = self.nearest_reference(points)
        return ids * self.stretch + dists

    def partition_interval(self, partition: int) -> tuple[float, float]:
        """Key interval [j*c, (j+1)*c) owned by partition ``partition``."""
        if not 0 <= partition < self.n_references:
            raise ValueError(f"partition {partition} out of range")
        return partition * self.stretch, (partition + 1) * self.stretch

    def annulus_keys(
        self, center: np.ndarray, radius: float
    ) -> list[tuple[float, float]]:
        """Key ranges that may contain points within ``radius`` of ``center``.

        For each reference ``o_j`` at distance ``r_j`` from the query centre,
        points of partition j within the query ball have key in
        ``[j*c + max(0, r_j - radius), j*c + r_j + radius]`` — the classic
        iDistance annulus filter used by window and kNN search.
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        c = np.asarray(center, dtype=np.float64)
        diff = self.references - c
        ref_dist = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        ranges: list[tuple[float, float]] = []
        for j, r_j in enumerate(ref_dist):
            lo = j * self.stretch + max(0.0, r_j - radius)
            hi = j * self.stretch + r_j + radius
            ranges.append((lo, hi))
        return ranges
