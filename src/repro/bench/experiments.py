"""Experiment drivers: one per table/figure of Section VII.

Each function regenerates the rows/series of a paper table or figure at the
given :class:`~repro.bench.harness.ExperimentScale` and returns structured
data; ``benchmarks/`` wraps them in pytest-benchmark cases and prints the
paper-style tables, and EXPERIMENTS.md records paper-vs-measured shapes.

Shared state (the trained method selector, the MR pool, generated data
sets) lives in a :class:`Context` so a full suite run prepares each once —
mirroring the paper's "ELSI preparation is an off-line and one-off task".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import GridIndex, HRRIndex, KDBIndex, RStarIndex
from repro.bench.harness import ExperimentScale, measure_query_seconds, time_call
from repro.core import (
    ELSIConfig,
    ELSIModelBuilder,
    MethodScorer,
    TreeSelector,
    collect_selector_data,
    selector_accuracy,
    train_ffn_selector,
)
from repro.core.methods.model_reuse import ModelReuseMethod
from repro.core.update_processor import UpdateProcessor
from repro.data import load_dataset
from repro.data.generators import skewed
from repro.indices import LISAIndex, MLIndex, RSMIIndex, ZMIndex
from repro.indices.base import LearnedSpatialIndex
from repro.queries.evaluate import brute_force_window, knn_recall, window_recall
from repro.queries.workload import knn_workload, point_workload, window_workload

__all__ = [
    "Context",
    "LEARNED_INDICES",
    "TRADITIONAL_INDICES",
    "fig06_selector_accuracy",
    "fig07_pareto",
    "fig08_build_times",
    "fig09_build_vs_lambda",
    "fig10_point_query",
    "fig11_point_vs_lambda",
    "fig12_window",
    "fig13_window_sweeps",
    "fig14_knn",
    "fig15_updates",
    "fig16_window_updates",
    "table1_cost_decomposition",
    "table2_ablation",
]

#: Learned base indices by paper name ("ML", "LISA", "RSMI" are reported;
#: ZM is used for the method studies, Section VII-A).
LEARNED_INDICES: dict[str, type[LearnedSpatialIndex]] = {
    "ZM": ZMIndex,
    "ML": MLIndex,
    "RSMI": RSMIIndex,
    "LISA": LISAIndex,
}

TRADITIONAL_INDICES = {
    "Grid": GridIndex,
    "KDB": KDBIndex,
    "HRR": HRRIndex,
    "RR*": RStarIndex,
}

#: The paper's six evaluation data sets (Figure 8 x-axis order).
DATASET_NAMES = ("Uniform", "Skewed", "OSM1", "OSM2", "TPC-H", "NYC")


@dataclass
class Context:
    """Shared, lazily prepared experiment state."""

    scale: ExperimentScale
    seed: int = 0
    _config: ELSIConfig | None = None
    _selector: MethodScorer | None = None
    _datasets: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def config(self) -> ELSIConfig:
        if self._config is None:
            self._config = ELSIConfig(
                train_epochs=self.scale.train_epochs,
                rl_steps=self.scale.rl_steps,
                seed=self.seed,
            )
        return self._config

    def config_with(self, **overrides) -> ELSIConfig:
        base = self.config
        kwargs = dict(
            lam=base.lam,
            w_q=base.w_q,
            rho=base.rho,
            n_clusters=base.n_clusters,
            epsilon=base.epsilon,
            beta=base.beta,
            eta=base.eta,
            rl_steps=base.rl_steps,
            rl_alpha=base.rl_alpha,
            f_u=base.f_u,
            train_epochs=base.train_epochs,
            hidden_size=base.hidden_size,
            seed=base.seed,
            methods=base.methods,
        )
        kwargs.update(overrides)
        return ELSIConfig(**kwargs)

    def dataset(self, name: str, n: int | None = None) -> np.ndarray:
        n = n or self.scale.n
        key = f"{name}:{n}"
        if key not in self._datasets:
            self._datasets[key] = load_dataset(name, n, seed=self.seed)
        return self._datasets[key]

    @property
    def selector(self) -> MethodScorer:
        """The trained FFN method selector (one-off preparation)."""
        if self._selector is None:
            records = collect_selector_data(
                lambda b: ZMIndex(builder=b, branching=1),
                config=self.config,
                cardinalities=self.scale.selector_cardinalities,
                deltas=self.scale.selector_deltas,
                n_queries=self.scale.n_point_queries,
                seed=self.seed,
            )
            self._selector = train_ffn_selector(
                records, method_names=tuple(self.config.methods), seed=self.seed
            )
        return self._selector

    def warm_mr(self) -> None:
        """Pre-train MR's pool so it never counts toward build times."""
        ModelReuseMethod(
            epsilon=self.config.epsilon,
            hidden_size=self.config.hidden_size,
            train_epochs=self.config.train_epochs,
            seed=self.seed,
        ).prepare()

    # ------------------------------------------------------------------
    def build_learned(
        self,
        index_name: str,
        points: np.ndarray,
        method: str | None = None,
        use_selector: bool = False,
        random_choice: bool = False,
        lam: float | None = None,
    ) -> tuple[LearnedSpatialIndex, float]:
        """(built index, build seconds) for a learned index configuration."""
        config = self.config if lam is None else self.config_with(lam=lam)
        builder = ELSIModelBuilder(
            config,
            selector=self.selector if use_selector else None,
            method=method,
            random_choice=random_choice,
        )
        index = LEARNED_INDICES[index_name](builder=builder)
        _, seconds = time_call(index.build, points)
        return index, seconds

    def build_traditional(self, index_name: str, points: np.ndarray):
        """(built index, build seconds) for a traditional competitor."""
        index = TRADITIONAL_INDICES[index_name]()
        _, seconds = time_call(index.build, points)
        return index, seconds


# ----------------------------------------------------------------------
# Figure 6 — method selector accuracy
# ----------------------------------------------------------------------
def fig06_selector_accuracy(
    ctx: Context,
    lams: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
) -> dict:
    """Figure 6(a): FFN accuracy vs λ for growing cardinality caps u.
    Figure 6(b): FFN vs RFR / RFC / DTR / DTC selectors.

    Accuracy is measured on *held-out* records: the same (n, dist) grid
    regenerated with a different seed, which is stricter than the paper's
    in-sample accuracy and penalises overfitting tree selectors.
    """
    cards = ctx.scale.selector_cardinalities
    deltas = ctx.scale.selector_deltas
    factory = lambda b: ZMIndex(builder=b, branching=1)  # noqa: E731

    train_records = collect_selector_data(
        factory, ctx.config, cards, deltas, ctx.scale.n_point_queries, seed=ctx.seed
    )
    test_records = collect_selector_data(
        factory, ctx.config, cards, deltas, ctx.scale.n_point_queries, seed=ctx.seed + 1
    )

    # (a) vary u: train on prefixes of the cardinality list.
    fig_a: dict[int, list[tuple[float, float]]] = {}
    for u_index in range(1, len(cards) + 1):
        subset_cards = set(cards[:u_index])
        train_u = [r for r in train_records if r.n in subset_cards]
        scorer = train_ffn_selector(train_u, tuple(ctx.config.methods), seed=ctx.seed)
        test_u = [r for r in test_records if r.n in subset_cards]
        fig_a[u_index] = [
            (lam, selector_accuracy(scorer, test_u, lam)) for lam in lams
        ]

    # (b) model comparison on the full grid.
    fig_b: dict[str, list[tuple[float, float]]] = {}
    ffn = train_ffn_selector(train_records, tuple(ctx.config.methods), seed=ctx.seed)
    fig_b["FFN"] = [(lam, selector_accuracy(ffn, test_records, lam)) for lam in lams]
    for kind in ("RFR", "DTR"):
        selector = TreeSelector(kind, seed=ctx.seed).fit(train_records)
        fig_b[kind] = [
            (lam, selector_accuracy(selector, test_records, lam)) for lam in lams
        ]
    for kind in ("RFC", "DTC"):
        series = []
        for lam in lams:
            selector = TreeSelector(kind, seed=ctx.seed).fit(train_records, lam=lam)
            series.append((lam, selector_accuracy(selector, test_records, lam)))
        fig_b[kind] = series
    return {"fig6a": fig_a, "fig6b": fig_b}


# ----------------------------------------------------------------------
# Figure 7 — Pareto fronts of the build methods
# ----------------------------------------------------------------------
def fig07_pareto(ctx: Context, dataset: str = "OSM1") -> list[dict]:
    """Build-time vs point-query-time fronts per method and base index.

    Sweeps each method's parameter the way Figure 7 does: ρ up for SP/RSP,
    C up for CL, ε down for MR, β down for RS, η up for RL.
    """
    points = ctx.dataset(dataset)
    queries = point_workload(points, ctx.scale.n_point_queries, seed=ctx.seed)
    ctx.warm_mr()
    sweeps: list[tuple[str, str, dict]] = []
    for rho in (0.002, 0.01, 0.05):
        sweeps.append(("SP", f"rho={rho}", {"rho": rho}))
        sweeps.append(("RSP", f"rho={rho}", {"rho": rho}))
    for c in (50, 200, 800):
        sweeps.append(("CL", f"C={c}", {"n_clusters": c}))
    for eps in (0.5, 0.3, 0.1):
        sweeps.append(("MR", f"eps={eps}", {"epsilon": eps}))
    for beta in (400, 100, 25):
        sweeps.append(("RS", f"beta={beta}", {"beta": beta}))
    for eta in (4, 8, 16):
        sweeps.append(("RL", f"eta={eta}", {"eta": eta}))
    sweeps.append(("OG", "full", {}))

    rows: list[dict] = []
    all_methods = ("SP", "RSP", "CL", "MR", "RS", "RL", "OG")
    for index_name in LEARNED_INDICES:
        for method, label, overrides in sweeps:
            if method in ("CL", "RL") and index_name == "LISA":
                continue  # inapplicable (Section VII-A)
            config = ctx.config_with(methods=all_methods, **overrides)
            builder = ELSIModelBuilder(config, method=method)
            index = LEARNED_INDICES[index_name](builder=builder)
            if method == "MR":
                ModelReuseMethod(
                    epsilon=config.epsilon,
                    hidden_size=config.hidden_size,
                    train_epochs=config.train_epochs,
                    seed=ctx.seed,
                ).prepare()
            _, build_seconds = time_call(index.build, points)
            query_seconds = measure_query_seconds(index, queries)
            rows.append(
                {
                    "index": index_name,
                    "method": method,
                    "param": label,
                    "build_seconds": build_seconds,
                    "query_us": query_seconds * 1e6,
                    "methods_used": dict(index.build_stats.methods_used),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Table I — cost decomposition on OSM1 with ZM
# ----------------------------------------------------------------------
def table1_cost_decomposition(ctx: Context, dataset: str = "OSM1") -> list[dict]:
    """Training / extra seconds and |Error| per method (ZM base index)."""
    from repro.core.costs import CostModel

    points = ctx.dataset(dataset)
    ctx.warm_mr()
    cost_model = CostModel(len(points), d=points.shape[1], config=ctx.config)
    rows: list[dict] = []
    for method in ctx.config.methods:
        builder = ELSIModelBuilder(ctx.config, method=method)
        index = ZMIndex(builder=builder)
        index.build(points)
        stats = index.build_stats
        analytical = cost_model.method_cost(method)
        rows.append(
            {
                "method": method,
                "training_formula": analytical.training_formula,
                "extra_formula": analytical.extra_formula,
                "prepare_seconds": stats.prepare_seconds,
                "training_seconds": stats.train_seconds,
                "extra_seconds": stats.extra_seconds,
                "error_width": index.error_width,
                "train_set_size": stats.train_set_size,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table II — ELSI vs Rand vs each fixed method
# ----------------------------------------------------------------------
def table2_ablation(ctx: Context, dataset: str = "OSM1") -> dict:
    """Build + point-query times for ELSI / Rand / SP / CL / MR / RS / RL / OG."""
    points = ctx.dataset(dataset)
    queries = point_workload(points, ctx.scale.n_point_queries, seed=ctx.seed)
    ctx.warm_mr()
    _ = ctx.selector  # prepare before timing

    columns = ["ELSI", "Rand", "SP", "CL", "MR", "RS", "RL", "OG"]
    build: dict[str, dict[str, float | None]] = {}
    query: dict[str, dict[str, float | None]] = {}
    for index_name in ("ZM", "RSMI", "ML", "LISA"):
        build[index_name] = {}
        query[index_name] = {}
        for column in columns:
            if index_name == "LISA" and column in ("CL", "RL"):
                build[index_name][column] = None  # NA in the paper's table
                query[index_name][column] = None
                continue
            kwargs: dict = {}
            if column == "ELSI":
                kwargs["use_selector"] = True
            elif column == "Rand":
                kwargs["random_choice"] = True
            else:
                kwargs["method"] = column
            index, build_seconds = ctx.build_learned(index_name, points, **kwargs)
            build[index_name][column] = build_seconds
            query[index_name][column] = measure_query_seconds(index, queries) * 1e6
    return {"columns": columns, "build_seconds": build, "query_us": query}


# ----------------------------------------------------------------------
# Figure 8 — build time vs data distribution
# ----------------------------------------------------------------------
def fig08_build_times(ctx: Context) -> dict:
    """Build seconds per data set for the 10 indices of Figure 8."""
    ctx.warm_mr()
    _ = ctx.selector
    results: dict[str, dict[str, float]] = {}
    for name in DATASET_NAMES:
        points = ctx.dataset(name)
        row: dict[str, float] = {}
        for t_name in TRADITIONAL_INDICES:
            _, seconds = ctx.build_traditional(t_name, points)
            row[t_name] = seconds
        for l_name in ("ML", "LISA", "RSMI"):
            _, seconds = ctx.build_learned(l_name, points, method="OG")
            row[l_name] = seconds
            _, seconds = ctx.build_learned(l_name, points, use_selector=True)
            row[f"{l_name}-F"] = seconds
        results[name] = row
    return results


# ----------------------------------------------------------------------
# Figure 9 — build time vs lambda
# ----------------------------------------------------------------------
def fig09_build_vs_lambda(
    ctx: Context,
    datasets: tuple[str, ...] = ("Skewed", "OSM1"),
    lams: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
) -> dict:
    """Build seconds of the -F indices vs λ, with RR*/RSMI references."""
    ctx.warm_mr()
    _ = ctx.selector
    results: dict[str, dict] = {}
    for name in datasets:
        points = ctx.dataset(name)
        series: dict[str, list[tuple[float, float]]] = {
            "ML-F": [],
            "LISA-F": [],
            "RSMI-F": [],
        }
        methods_chosen: dict[float, dict[str, int]] = {}
        for lam in lams:
            chosen: dict[str, int] = {}
            for l_name in ("ML", "LISA", "RSMI"):
                index, seconds = ctx.build_learned(
                    l_name, points, use_selector=True, lam=lam
                )
                series[f"{l_name}-F"].append((lam, seconds))
                for m, c in index.build_stats.methods_used.items():
                    chosen[m] = chosen.get(m, 0) + c
            methods_chosen[lam] = chosen
        _, rr_seconds = ctx.build_traditional("RR*", points)
        og_seconds: dict[str, float] = {}
        for l_name in ("ML", "LISA", "RSMI"):
            _, og_seconds[l_name] = ctx.build_learned(l_name, points, method="OG")
        results[name] = {
            "series": series,
            "RR*": rr_seconds,
            "RSMI": og_seconds["RSMI"],
            "OG": og_seconds,
            "methods_chosen": methods_chosen,
        }
    return results


# ----------------------------------------------------------------------
# Figures 10/11 — point query times
# ----------------------------------------------------------------------
def fig10_point_query(ctx: Context) -> dict:
    """Average point query μs per data set for all indices (Figure 10)."""
    ctx.warm_mr()
    _ = ctx.selector
    results: dict[str, dict[str, float]] = {}
    for name in DATASET_NAMES:
        points = ctx.dataset(name)
        queries = point_workload(points, ctx.scale.n_point_queries, seed=ctx.seed)
        row: dict[str, float] = {}
        for t_name in TRADITIONAL_INDICES:
            index, _ = ctx.build_traditional(t_name, points)
            row[t_name] = measure_query_seconds(index, queries) * 1e6
        for l_name in ("ML", "LISA", "RSMI"):
            index, _ = ctx.build_learned(l_name, points, method="OG")
            row[l_name] = measure_query_seconds(index, queries) * 1e6
            index, _ = ctx.build_learned(l_name, points, use_selector=True)
            row[f"{l_name}-F"] = measure_query_seconds(index, queries) * 1e6
        results[name] = row
    return results


def fig11_point_vs_lambda(
    ctx: Context,
    datasets: tuple[str, ...] = ("OSM1", "TPC-H"),
    lams: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
) -> dict:
    """Point query μs of the -F indices vs λ (Figure 11)."""
    ctx.warm_mr()
    _ = ctx.selector
    results: dict[str, dict] = {}
    for name in datasets:
        points = ctx.dataset(name)
        queries = point_workload(points, ctx.scale.n_point_queries, seed=ctx.seed)
        series: dict[str, list[tuple[float, float]]] = {}
        for l_name in ("ML", "LISA", "RSMI"):
            row: list[tuple[float, float]] = []
            for lam in lams:
                index, _ = ctx.build_learned(l_name, points, use_selector=True, lam=lam)
                row.append((lam, measure_query_seconds(index, queries) * 1e6))
            series[f"{l_name}-F"] = row
        index, _ = ctx.build_traditional("RR*", points)
        rr = measure_query_seconds(index, queries) * 1e6
        index, _ = ctx.build_learned("RSMI", points, method="OG")
        rsmi = measure_query_seconds(index, queries) * 1e6
        results[name] = {"series": series, "RR*": rr, "RSMI": rsmi}
    return results


# ----------------------------------------------------------------------
# Figures 12/13 — window queries
# ----------------------------------------------------------------------
def _window_time_and_recall(index, queries, points) -> tuple[float, float]:
    started = time.perf_counter()
    results = [q.run(index) for q in queries]
    elapsed = (time.perf_counter() - started) / len(queries)
    recalls = [
        window_recall(res, brute_force_window(points, q.window))
        for q, res in zip(queries, results)
    ]
    return elapsed * 1e6, float(np.mean(recalls))


def fig12_window(ctx: Context, area_fraction: float = 1e-4) -> dict:
    """Window query μs and recall per data set (Figure 12, 0.01 % windows)."""
    ctx.warm_mr()
    _ = ctx.selector
    times: dict[str, dict[str, float]] = {}
    recalls: dict[str, dict[str, float]] = {}
    for name in DATASET_NAMES:
        points = ctx.dataset(name)
        queries = window_workload(
            points, ctx.scale.n_window_queries, area_fraction, seed=ctx.seed
        )
        t_row: dict[str, float] = {}
        r_row: dict[str, float] = {}
        for t_name in TRADITIONAL_INDICES:
            index, _ = ctx.build_traditional(t_name, points)
            t_row[t_name], _ = _window_time_and_recall(index, queries, points)
        for l_name in ("ML", "LISA", "RSMI"):
            index, _ = ctx.build_learned(l_name, points, method="OG")
            t_row[l_name], r_row[l_name] = _window_time_and_recall(index, queries, points)
            index, _ = ctx.build_learned(l_name, points, use_selector=True)
            t_row[f"{l_name}-F"], r_row[f"{l_name}-F"] = _window_time_and_recall(
                index, queries, points
            )
        times[name] = t_row
        recalls[name] = r_row
    return {"query_us": times, "recall": recalls}


def fig13_window_sweeps(
    ctx: Context,
    dataset: str = "OSM1",
    lams: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    area_fractions: tuple[float, ...] | None = None,
) -> dict:
    """Figure 13(a): window μs vs λ; (b): window μs vs window size.

    The paper sweeps 0.0006 %–0.16 % of the space at n = 1.28e8; at reduced
    cardinality those windows would be empty, so the default size sweep
    keeps the paper's *selectivity* shape: expected result counts grow
    geometrically from ~3 to ~800 points.
    """
    ctx.warm_mr()
    _ = ctx.selector
    points = ctx.dataset(dataset)
    if area_fractions is None:
        n = len(points)
        area_fractions = tuple(
            min(0.5, k / n) for k in (3, 12, 50, 200, 800)
        )
    queries = window_workload(points, ctx.scale.n_window_queries, 1e-4, seed=ctx.seed)

    by_lambda: dict[str, list[tuple[float, float]]] = {}
    for l_name in ("ML", "LISA", "RSMI"):
        series = []
        for lam in lams:
            index, _ = ctx.build_learned(l_name, points, use_selector=True, lam=lam)
            t, _ = _window_time_and_recall(index, queries, points)
            series.append((lam, t))
        by_lambda[f"{l_name}-F"] = series

    by_size: dict[str, list[tuple[float, float]]] = {}
    by_size_counts: dict[str, list[float]] = {}
    fixed_indices: dict[str, object] = {}
    for l_name in ("ML", "LISA", "RSMI"):
        fixed_indices[f"{l_name}-F"], _ = ctx.build_learned(
            l_name, points, use_selector=True
        )
    fixed_indices["RSMI"], _ = ctx.build_learned("RSMI", points, method="OG")
    fixed_indices["RR*"], _ = ctx.build_traditional("RR*", points)
    for label, index in fixed_indices.items():
        series = []
        counts = []
        for fraction in area_fractions:
            qs = window_workload(
                points, max(ctx.scale.n_window_queries // 2, 10), fraction, seed=ctx.seed
            )
            started = time.perf_counter()
            results = [q.run(index) for q in qs]
            elapsed = (time.perf_counter() - started) / len(qs)
            series.append((fraction, elapsed * 1e6))
            counts.append(float(np.mean([len(r) for r in results])))
        by_size[label] = series
        by_size_counts[label] = counts
    return {
        "by_lambda": by_lambda,
        "by_size": by_size,
        "by_size_counts": by_size_counts,
    }


# ----------------------------------------------------------------------
# Figure 14 — kNN queries
# ----------------------------------------------------------------------
def fig14_knn(ctx: Context) -> dict:
    """kNN query μs and recall per data set (Figure 14, k = 25)."""
    ctx.warm_mr()
    _ = ctx.selector
    times: dict[str, dict[str, float]] = {}
    recalls: dict[str, dict[str, float]] = {}
    for name in DATASET_NAMES:
        points = ctx.dataset(name)
        queries = knn_workload(
            points, ctx.scale.n_knn_queries, k=ctx.scale.k, seed=ctx.seed
        )
        t_row: dict[str, float] = {}
        r_row: dict[str, float] = {}

        def run(index, label: str) -> None:
            started = time.perf_counter()
            results = [q.run(index) for q in queries]
            t_row[label] = (time.perf_counter() - started) / len(queries) * 1e6
            r_row[label] = float(
                np.mean(
                    [
                        knn_recall(res, points, q.array, q.k)
                        for q, res in zip(queries, results)
                    ]
                )
            )

        for t_name in TRADITIONAL_INDICES:
            index, _ = ctx.build_traditional(t_name, points)
            run(index, t_name)
        for l_name in ("ML", "LISA", "RSMI"):
            index, _ = ctx.build_learned(l_name, points, method="OG")
            run(index, l_name)
            index, _ = ctx.build_learned(l_name, points, use_selector=True)
            run(index, f"{l_name}-F")
        times[name] = t_row
        recalls[name] = r_row
    return {"query_us": times, "recall": recalls}


# ----------------------------------------------------------------------
# Figures 15/16 — updates
# ----------------------------------------------------------------------
def _updates_experiment(
    ctx: Context,
    insert_ratios: tuple[float, ...],
    measure,
) -> dict:
    """Shared driver: 10 % of OSM1 as the base, Skewed insertions.

    ``measure(processor_or_index, points_now)`` returns a metrics dict; the
    driver records it per index variant after each cumulative ratio, along
    with average per-insert seconds.
    """
    ctx.warm_mr()
    _ = ctx.selector
    base_n = max(ctx.scale.n // 10, 500)
    base_points = ctx.dataset("OSM1")[:base_n]
    total_inserts = int(max(insert_ratios) * base_n)
    inserts = skewed(total_inserts + 1, seed=ctx.seed + 7)

    variants: dict[str, dict] = {}
    for l_name in ("ML", "LISA", "RSMI"):
        for rebuild in (False, True):
            label = f"{l_name}-{'R' if rebuild else 'F'}"
            index, _ = ctx.build_learned(l_name, base_points, use_selector=True)
            # Built-in insertion per the paper's Figure 15 setting: the
            # index structure itself degrades, and only -R repairs it.
            processor = UpdateProcessor(
                index, ctx.config, auto_rebuild=False, native=True
            )
            variants[label] = {"processor": processor, "rebuild": rebuild}
    rstar = RStarIndex()
    rstar.build(base_points)
    variants["RR*"] = {"rstar": rstar}

    results: dict[str, list[dict]] = {label: [] for label in variants}
    cursor = 0
    for ratio in insert_ratios:
        target = int(ratio * base_n)
        batch = inserts[cursor:target]
        cursor = target
        for label, state in variants.items():
            started = time.perf_counter()
            if "rstar" in state:
                for p in batch:
                    state["rstar"].insert(p)
            else:
                processor: UpdateProcessor = state["processor"]
                for p in batch:
                    processor.insert(p)
            insert_seconds = (time.perf_counter() - started) / max(len(batch), 1)
            rebuilt = False
            if state.get("rebuild") and state["processor"].to_rebuild():
                state["processor"].rebuild()
                rebuilt = True
            target_obj = state.get("rstar") or state["processor"]
            points_now = (
                np.vstack([base_points, inserts[:cursor]])
                if cursor
                else base_points
            )
            metrics = measure(target_obj, points_now)
            metrics.update(
                {
                    "ratio": ratio,
                    "insert_us": insert_seconds * 1e6,
                    "rebuilt": rebuilt,
                }
            )
            results[label].append(metrics)
    return results


def fig15_updates(
    ctx: Context,
    insert_ratios: tuple[float, ...] = (0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.28),
) -> dict:
    """Figure 15: insertion μs and point-query μs vs insertion ratio."""

    def measure(index_or_processor, points_now) -> dict:
        rng = np.random.default_rng(ctx.seed)
        sample = points_now[
            rng.integers(0, len(points_now), size=min(ctx.scale.n_point_queries, len(points_now)))
        ]
        started = time.perf_counter()
        for p in sample:
            index_or_processor.point_query(p)
        return {"point_us": (time.perf_counter() - started) / len(sample) * 1e6}

    return _updates_experiment(ctx, insert_ratios, measure)


def fig16_window_updates(
    ctx: Context,
    insert_ratios: tuple[float, ...] = (0.01, 0.04, 0.16, 0.64, 1.28),
    area_fraction: float = 1e-4,
) -> dict:
    """Figure 16: window μs and recall vs insertion ratio."""

    def measure(index_or_processor, points_now) -> dict:
        queries = window_workload(
            points_now,
            max(ctx.scale.n_window_queries // 4, 10),
            area_fraction,
            seed=ctx.seed,
        )
        started = time.perf_counter()
        results = [q.run(index_or_processor) for q in queries]
        elapsed = (time.perf_counter() - started) / len(queries)
        recalls = [
            window_recall(res, brute_force_window(points_now, q.window))
            for q, res in zip(queries, results)
        ]
        return {"window_us": elapsed * 1e6, "recall": float(np.mean(recalls))}

    return _updates_experiment(ctx, insert_ratios, measure)
