"""Figure 14 — kNN query time and recall vs data distribution (k = 25).

Paper shapes to hold: ELSI's average kNN time increase is small (~3% in the
paper; looser here at reduced scale); recall drops bounded (worst -10% for
RSMI-F, -6% for LISA-F in the paper); ML-F stays at recall 1.0.
"""

from repro.bench.experiments import fig14_knn
from repro.bench.harness import format_table


def test_fig14_knn(ctx, benchmark):
    result = benchmark.pedantic(fig14_knn, args=(ctx,), rounds=1, iterations=1)

    print()
    times = result["query_us"]
    recalls = result["recall"]
    index_names = list(next(iter(times.values())))
    rows = [[name] + [f"{times[name][i]:.0f}" for i in index_names] for name in times]
    print(format_table(["data set"] + index_names, rows,
                       title="Figure 14(a): kNN query time (us), k=25"))
    rows = [
        [name] + [f"{recalls[name][i]:.3f}" for i in index_names] for name in recalls
    ]
    print(format_table(["data set"] + index_names, rows,
                       title="Figure 14(b): kNN recall, k=25"))

    for name in times:
        # Traditional indices are exact.
        for traditional in ("Grid", "KDB", "HRR", "RR*"):
            assert recalls[name][traditional] == 1.0
        # ML's kNN is exact with and without ELSI.
        assert recalls[name]["ML-F"] > 0.99
        # RSMI-F / LISA-F recall bounded drop vs their no-ELSI versions.
        for learned in ("RSMI", "LISA"):
            drop = recalls[name][learned] - recalls[name][f"{learned}-F"]
            assert drop < 0.2, (name, learned, drop)

    ratios = [
        times[name][f"{learned}-F"] / max(times[name][learned], 1e-9)
        for name in times
        for learned in ("ML", "LISA", "RSMI")
    ]
    mean_ratio = sum(ratios) / len(ratios)
    print(f"\nmean -F / no-ELSI kNN time ratio: {mean_ratio:.2f} (paper: ~1.03)")
    assert mean_ratio < 2.5
