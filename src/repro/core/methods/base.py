"""The build-method interface: turn sorted data into a reduced training set.

A :class:`BuildMethod` implements ``compute_set`` of Algorithm 1 (line 4):
given the key-sorted partition, produce training pairs ``(keys, ranks)``
with ``ranks`` in [0, 1].  Methods that select *existing* points (SP, RSP,
RS) return the selected points' true ranks in ``D``; methods that
*synthesise* points (CL, MR, RL) return ranks within ``D_S`` — the premise
being that a distribution-preserving ``D_S`` has approximately the same
CDF as ``D`` (Definition 1).

``requires_map_fn`` encodes applicability: CL and RL need the base index's
``map()`` for arbitrary coordinates, which an index with a data-derived
mapping (LISA) cannot provide — matching the paper's restriction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.indices.base import MapFn

__all__ = ["BuildMethod", "MethodResult", "make_method_pool"]


@dataclass(frozen=True)
class MethodResult:
    """A reduced training set plus the method's extra cost.

    ``train_keys`` are sorted ascending; ``train_ranks`` are the matching
    regression targets in [0, 1]; ``extra_seconds`` is the method-specific
    ``cost_ex`` term of Section VI-B.

    MR sets ``pretrained_state``: a ready FFN state dict (trained on
    min-max-normalised keys, so it transfers to any key range).  The build
    processor then skips online training entirely.
    """

    train_keys: np.ndarray
    train_ranks: np.ndarray
    extra_seconds: float
    pretrained_state: dict | None = None

    def __post_init__(self) -> None:
        if len(self.train_keys) != len(self.train_ranks):
            raise ValueError(
                f"{len(self.train_keys)} keys vs {len(self.train_ranks)} ranks"
            )
        if len(self.train_keys) == 0:
            raise ValueError("a training set cannot be empty")


class BuildMethod(ABC):
    """One entry of the ELSI method pool."""

    #: Canonical short name used across the paper's tables and figures.
    name: str = "?"
    #: Whether the method synthesises points and therefore needs map().
    requires_map_fn: bool = False

    def applicable(self, map_fn: MapFn | None) -> bool:
        """Whether this method can run for the given partition."""
        return map_fn is not None or not self.requires_map_fn

    @abstractmethod
    def compute_set(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        map_fn: MapFn | None,
    ) -> MethodResult:
        """Construct the reduced training set ``D_S`` for this partition."""

    @staticmethod
    def _true_ranks(indices: np.ndarray, n: int) -> np.ndarray:
        """Normalised ranks in ``D`` for selected sorted positions."""
        return np.asarray(indices, dtype=np.float64) / max(n - 1, 1)

    @staticmethod
    def _self_ranks(n_s: int) -> np.ndarray:
        """Normalised ranks within ``D_S`` (synthetic-point methods)."""
        return np.arange(n_s, dtype=np.float64) / max(n_s - 1, 1)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def make_method_pool(config) -> "list[BuildMethod]":
    """Instantiate the configured method pool in canonical order.

    Accepts an :class:`repro.core.config.ELSIConfig`; imported lazily to
    avoid a circular import between the config and method modules.
    """
    from repro.core.methods.clustering import ClusteringMethod
    from repro.core.methods.model_reuse import ModelReuseMethod
    from repro.core.methods.original import OriginalMethod
    from repro.core.methods.representative import RepresentativeSetMethod
    from repro.core.methods.rl import ReinforcementLearningMethod
    from repro.core.methods.sampling import (
        RandomSamplingMethod,
        SystematicSamplingMethod,
    )

    factories = {
        "SP": lambda: SystematicSamplingMethod(rho=config.rho),
        "RSP": lambda: RandomSamplingMethod(rho=config.rho, seed=config.seed),
        "CL": lambda: ClusteringMethod(n_clusters=config.n_clusters, seed=config.seed),
        "MR": lambda: ModelReuseMethod(
            epsilon=config.epsilon,
            hidden_size=config.hidden_size,
            train_epochs=config.train_epochs,
            seed=config.seed,
        ),
        "RS": lambda: RepresentativeSetMethod(beta=config.beta),
        "RL": lambda: ReinforcementLearningMethod(
            eta=config.eta,
            steps=config.rl_steps,
            alpha=config.rl_alpha,
            zeta=config.zeta,
            gamma=config.gamma,
            seed=config.seed,
        ),
        "OG": lambda: OriginalMethod(),
    }
    pool: list[BuildMethod] = []
    for name in config.methods:
        if name not in factories:
            raise ValueError(f"unknown build method {name!r}; known: {sorted(factories)}")
        pool.append(factories[name]())
    return pool
