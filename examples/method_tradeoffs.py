"""Exploring ELSI's build-method trade-offs and the learned selector.

Sweeps the method pool on one data set (the Figure 7 Pareto view), then
trains the method scorer on a small (cardinality x distribution) grid and
shows how its choice moves from query-optimised methods to build-optimised
methods as lambda grows (the Figure 9 selection behaviour).

Run:  python examples/method_tradeoffs.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ELSI, ELSIConfig, ZMIndex
from repro.core.build_processor import ELSIModelBuilder
from repro.core.methods.model_reuse import ModelReuseMethod
from repro.data import load_dataset
from repro.spatial.cdf import uniform_dissimilarity

N_POINTS = 15_000


def main() -> None:
    config = ELSIConfig(train_epochs=250, rl_steps=150)
    points = load_dataset("NYC", N_POINTS)
    print(f"Data set: NYC-like, {N_POINTS:,} points")

    # Warm the MR pool so its one-off preparation stays out of build times.
    ModelReuseMethod(
        epsilon=config.epsilon,
        hidden_size=config.hidden_size,
        train_epochs=config.train_epochs,
    ).prepare()

    print("\n1. The method pool (Figure 7's trade-off, one row per method):")
    print(f"   {'method':<7} {'build (s)':>10} {'query (us)':>11} {'|D_S|':>7}")
    sample = points[:: max(1, N_POINTS // 500)]
    for method in ("SP", "CL", "MR", "RS", "RL", "OG"):
        index = ZMIndex(builder=ELSIModelBuilder(config, method=method))
        started = time.perf_counter()
        index.build(points)
        build_s = time.perf_counter() - started
        started = time.perf_counter()
        for p in sample:
            index.point_query(p)
        query_us = (time.perf_counter() - started) / len(sample) * 1e6
        print(f"   {method:<7} {build_s:>10.2f} {query_us:>11.1f} "
              f"{index.build_stats.train_set_size:>7}")

    print("\n2. Training the method scorer (one-off preparation) ...")
    elsi = ELSI(config)
    started = time.perf_counter()
    elsi.train_selector(
        lambda b: ZMIndex(builder=b, branching=1),
        cardinalities=(500, 2_000, 8_000),
        deltas=(0.0, 0.2, 0.4, 0.6, 0.8),
        n_queries=150,
    )
    print(f"   trained in {time.perf_counter() - started:.1f}s on a "
          f"3-cardinality x 5-distribution grid")

    from repro.spatial.rect import Rect
    from repro.spatial.zcurve import zvalues

    keys = np.sort(zvalues(points, Rect.bounding(points)).astype(np.float64))
    dist_u = uniform_dissimilarity(keys, assume_sorted=True)
    print(f"   this data set: n={N_POINTS:,}, dist(D_U, D)={dist_u:.3f}")

    print("\n3. The selector's choice as lambda sweeps 0 -> 1 (Equation 2):")
    methods = list(config.methods)
    for lam in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        choice = elsi.selector.select(N_POINTS, dist_u, methods, lam=lam)
        scores = elsi.selector.combined_scores(N_POINTS, dist_u, methods, lam=lam)
        ranked = sorted(zip(methods, scores), key=lambda t: -t[1])
        top3 = ", ".join(f"{m}={s:.2f}" for m, s in ranked[:3])
        print(f"   lambda={lam:.1f}: choose {choice:<3} (top scores: {top3})")
    print("\n   Expected shape (paper, Figure 9): query-optimised methods at")
    print("   small lambda, MR once lambda >= 0.8.")


if __name__ == "__main__":
    main()
