"""Feed-forward networks with ReLU hidden layers and a linear output.

This mirrors the model family the paper uses for every learned component:
index models, the method scorer's cost estimators, the rebuild predictor,
and the DQN's Q-function (Sections IV-B and VII-B1).

The implementation is a plain NumPy multilayer perceptron with manual
backpropagation.  It is intentionally small: ELSI's whole point is that the
*training-set size* dominates the training cost ``T(n)``, so a compact,
vectorised implementation preserves the cost behaviour the paper studies.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FFN"]


def _as_2d(x: np.ndarray) -> np.ndarray:
    """Coerce ``x`` to a 2-D float64 array of shape (n_samples, n_features)."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError(f"expected 1-D or 2-D input, got shape {arr.shape}")
    return arr


class FFN:
    """A multilayer perceptron: linear layers, ReLU activations, linear output.

    Parameters
    ----------
    layer_sizes:
        Sizes of all layers including input and output, e.g. ``[1, 16, 1]``
        for the one-dimensional CDF models the base indices learn.
    seed:
        Seed for He-initialised weights, making training reproducible.
    """

    def __init__(self, layer_sizes: list[int], seed: int = 0) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("an FFN needs at least an input and an output layer")
        if any(s <= 0 for s in layer_sizes):
            raise ValueError(f"layer sizes must be positive, got {layer_sizes}")
        self.layer_sizes = list(layer_sizes)
        rng = np.random.default_rng(seed)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        """Number of weight layers (hidden + output)."""
        return len(self.weights)

    @property
    def n_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the network on a batch; returns shape (n_samples, n_outputs)."""
        h = _as_2d(x)
        last = self.n_layers - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i != last:
                np.maximum(h, 0.0, out=h)
        return h

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass returning a 1-D array when the output layer is size 1."""
        out = self.forward(x)
        if out.shape[1] == 1:
            return out[:, 0]
        return out

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.predict(x)

    # ------------------------------------------------------------------
    # Training support
    # ------------------------------------------------------------------
    def parameters(self) -> list[np.ndarray]:
        """Flat list of parameter arrays, weights then biases interleaved."""
        params: list[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            params.append(w)
            params.append(b)
        return params

    def loss_and_gradients(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, list[np.ndarray]]:
        """Mean-squared-error loss and gradients for a batch.

        Returns the scalar L2 loss (the paper's training objective) and a
        list of gradient arrays aligned with :meth:`parameters`.
        """
        x2 = _as_2d(x)
        y2 = _as_2d(y)
        n = x2.shape[0]
        if n == 0:
            raise ValueError("cannot compute a loss on an empty batch")

        # Forward pass, caching post-activations and the ReLU masks so the
        # backward pass reuses them instead of recomputing comparisons.
        activations = [x2]
        relu_masks: list[np.ndarray] = []
        h = x2
        last = self.n_layers - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            if i == last:
                h = z
            else:
                mask = z > 0.0
                h = np.where(mask, z, 0.0)
                relu_masks.append(mask)
            activations.append(h)

        diff = activations[-1] - y2
        loss = float(np.mean(diff * diff))

        # Backward pass.
        grads: list[np.ndarray | None] = [None] * (2 * self.n_layers)
        delta = (2.0 / n) * diff
        for i in range(last, -1, -1):
            a_prev = activations[i]
            grads[2 * i] = a_prev.T @ delta
            grads[2 * i + 1] = delta.sum(axis=0)
            if i > 0:
                delta = delta @ self.weights[i].T
                delta = delta * relu_masks[i - 1]
        return loss, [g for g in grads if g is not None]

    # ------------------------------------------------------------------
    # (De)serialisation — used by the MR pre-trained model pool
    # ------------------------------------------------------------------
    def copy(self) -> "FFN":
        """Deep copy of the network (weights included)."""
        clone = FFN(self.layer_sizes)
        clone.weights = [w.copy() for w in self.weights]
        clone.biases = [b.copy() for b in self.biases]
        return clone

    def astype(self, dtype) -> "FFN":
        """Cast every parameter to ``dtype`` in place; returns self.

        The opt-in float32 inference mode casts trained networks down
        after (float64) training.  Predictions change by at most the
        precision drop, so callers must re-measure error bounds afterwards
        to keep predict-and-scan guarantees (see ``ELSIConfig.dtype``).
        """
        self.weights = [w.astype(dtype) for w in self.weights]
        self.biases = [b.astype(dtype) for b in self.biases]
        return self

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot of all parameters keyed ``w{i}`` / ``b{i}``."""
        state: dict[str, np.ndarray] = {}
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            state[f"w{i}"] = w.copy()
            state[f"b{i}"] = b.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters from :meth:`state_dict` output."""
        for i in range(self.n_layers):
            w = np.asarray(state[f"w{i}"], dtype=np.float64)
            b = np.asarray(state[f"b{i}"], dtype=np.float64)
            if w.shape != self.weights[i].shape or b.shape != self.biases[i].shape:
                raise ValueError(
                    f"layer {i} shape mismatch: got {w.shape}/{b.shape}, "
                    f"expected {self.weights[i].shape}/{self.biases[i].shape}"
                )
            self.weights[i] = w
            self.biases[i] = b
