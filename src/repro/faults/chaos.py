"""Chaos scenarios: crash the serving stack on purpose, then prove recovery.

Three named scenarios exercise the durability contract end to end (the CI
``chaos-smoke`` job runs all of them, see ``benchmarks/chaos_smoke.py``
and ``python -m repro chaos``):

``kill-and-recover``
    A child process builds a small index, serves it with a write-ahead
    log, applies a randomized insert/delete schedule — recording every
    *acknowledged* operation to an fsynced acks file — and kills itself
    with ``os._exit`` mid-schedule (optionally after the WAL append but
    before the acknowledgement, or with a torn WAL record).  The parent
    recovers with :meth:`IndexServer.from_snapshot` and proves the
    recovered state is **base + a schedule prefix covering every
    acknowledged op**, and that query results are bit-identical to an
    uncrashed reference.

``torn-snapshot``
    A ``snapshot.write=torn_write`` fault leaves a truncated ``.npz`` as
    the newest generation.  Recovery must quarantine it, fall back to the
    previous generation, and replay the retained WAL files — losing
    nothing.

``rebuild-crash-retry``
    A ``rebuild.worker=error:2`` fault kills the first two rebuild
    attempts; the retry/backoff machinery must converge on the third,
    restore ``healthy``, and the post-crash state must survive a full
    crash/recover cycle.

Every scenario returns a JSON-able report (op counts, verified prefix
length, per-site fault triggers) and raises :class:`ChaosError` on any
acknowledged-update loss — the harness asserts *zero*.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.core import ELSIConfig, ELSIModelBuilder
from repro.core.update_processor import UpdateProcessor
from repro.data import load_dataset
from repro.faults.registry import InjectedFault, get_fault_registry
from repro.indices.zm import ZMIndex
from repro.serve.server import HEALTHY, IndexServer, ServeConfig
from repro.spatial.rect import Rect

__all__ = [
    "ChaosError",
    "SCENARIOS",
    "kill_and_recover",
    "make_schedule",
    "rebuild_crash_retry",
    "run_scenarios",
    "torn_snapshot",
    "verify_recovery",
]

#: Child kill points relative to the WAL append of the kill op:
#: ``before`` — die before the op (acks == durable state, no tail);
#: ``after-wal`` — die after the durable append but before the client
#: acknowledgement (a durable-but-unacked tail op, the classic gap);
#: ``torn`` — die mid-append, leaving a torn record replay must drop.
KILL_MODES = ("before", "after-wal", "torn")

_CHILD_EXIT = 17  # deliberate-crash marker, distinct from real failures

_DATASET = "OSM1"


class ChaosError(AssertionError):
    """A chaos scenario observed acknowledged-update loss (or a broken
    invariant on the way there)."""


# ----------------------------------------------------------------------
# Deterministic workload + logical-state verification
# ----------------------------------------------------------------------
def _build_index(seed: int, n: int, epochs: int):
    """Deterministically build the small served index (child and the
    uncrashed reference both call this with the same arguments)."""
    points = load_dataset(_DATASET, n, seed=seed)
    config = ELSIConfig(train_epochs=epochs, seed=seed)
    builder = ELSIModelBuilder(config, method="SP")
    index = ZMIndex(builder=builder)
    index.build(points)
    factory = lambda: ZMIndex(builder=builder)  # noqa: E731
    return index, points, config, factory


def make_schedule(
    points: np.ndarray, n_ops: int, seed: int, delete_fraction: float = 0.3
) -> list[tuple[str, np.ndarray]]:
    """A deterministic randomized insert/delete schedule over ``points``.

    Deletes target points known to be live at that position in the
    schedule (base points or earlier inserts), so every op changes state.
    """
    rng = np.random.default_rng(seed + 0x5EED)
    live = [np.asarray(p, dtype=np.float64) for p in points]
    ops: list[tuple[str, np.ndarray]] = []
    for _ in range(n_ops):
        if live and rng.random() < delete_fraction:
            victim = live.pop(int(rng.integers(len(live))))
            ops.append(("delete", victim))
        else:
            fresh = rng.uniform(0.0, 1.0, size=points.shape[1])
            live.append(fresh)
            ops.append(("insert", fresh))
    return ops


def _canon(rows) -> np.ndarray:
    """Canonical (lexicographically sorted) form of a point multiset."""
    arr = np.asarray(list(rows), dtype=np.float64)
    if arr.size == 0:
        return arr.reshape(0, 2)
    order = np.lexsort(arr.T[::-1])
    return arr[order]


def _apply_op(live: list, op: str, point: np.ndarray) -> None:
    if op == "insert":
        live.append(np.asarray(point, dtype=np.float64))
        return
    for i, existing in enumerate(live):
        if np.array_equal(existing, point):
            live.pop(i)
            return


def verify_recovery(
    base_points: np.ndarray,
    schedule: list[tuple[str, np.ndarray]],
    n_acked: int,
    recovered_points: np.ndarray,
) -> int:
    """Prove ``recovered_points`` == base + ``schedule[:m]`` for some
    ``m >= n_acked``; returns that ``m``.

    ``m`` may exceed the acknowledged count: an op whose WAL append hit
    disk but whose acknowledgement never reached the client is *allowed*
    to survive (durable-but-unacked) — what is **not** allowed is a
    missing acknowledged op, which is exactly ``m < n_acked``.
    """
    recovered = _canon(recovered_points)
    live = [np.asarray(p, dtype=np.float64) for p in base_points]
    for op, point in schedule[:n_acked]:
        _apply_op(live, op, point)
    for m in range(n_acked, len(schedule) + 1):
        if np.array_equal(_canon(live), recovered):
            return m
        if m < len(schedule):
            _apply_op(live, *schedule[m])
    raise ChaosError(
        f"acknowledged-update loss: recovered state ({len(recovered)} points) "
        f"matches no schedule prefix >= the {n_acked} acknowledged ops "
        f"(base {len(base_points)}, schedule {len(schedule)})"
    )


def _reference_processor(
    seed: int, n: int, epochs: int, schedule, m: int
) -> UpdateProcessor:
    """The uncrashed reference: a fresh build plus ``schedule[:m]``."""
    index, _, config, factory = _build_index(seed, n, epochs)
    processor = UpdateProcessor(
        index, config, auto_rebuild=False, index_factory=factory
    )
    for op, point in schedule[:m]:
        if op == "insert":
            processor.insert(point)
        else:
            processor.delete(point)
    return processor


def _assert_query_parity(
    recovered: IndexServer, reference: UpdateProcessor, schedule, m: int
) -> None:
    """Bit-identical query results, recovered vs the uncrashed reference."""
    probes = _canon(
        [p for op, p in schedule[:m]] + list(reference.current_points()[:64])
    )
    got = recovered._gen.processor.point_queries(probes)
    want = reference.point_queries(probes)
    if not np.array_equal(np.asarray(got), np.asarray(want)):
        raise ChaosError("point-query results diverge from the uncrashed reference")
    window = Rect((0.0, 0.0), (1.0, 1.0))
    got_w = _canon(recovered._gen.processor.window_query(window))
    want_w = _canon(reference.window_query(window))
    if not np.array_equal(got_w, want_w):
        raise ChaosError("window-query results diverge from the uncrashed reference")


# ----------------------------------------------------------------------
# The crashing child (run as: python -m repro.faults.chaos child ...)
# ----------------------------------------------------------------------
def _child_main(args: argparse.Namespace) -> int:
    """Serve with a WAL, ack each op to an fsynced file, die on schedule."""
    index, points, config, factory = _build_index(args.seed, args.n, args.epochs)
    schedule = make_schedule(points, args.ops, args.seed)
    server = IndexServer(
        index,
        ServeConfig(max_retries=1, retry_base_delay=0.01, retry_max_delay=0.05),
        elsi_config=config,
        index_factory=factory,
        snapshots=args.dir,
        wal=True,
    )
    acks = open(Path(args.dir) / "acks.jsonl", "a")
    for i, (op, point) in enumerate(schedule):
        if i == args.rebuild_at:
            server.rebuild_now()
        if i == args.kill_after:
            if args.kill_mode == "before":
                os._exit(_CHILD_EXIT)
            if args.kill_mode == "torn":
                get_fault_registry().arm("wal.append", kind="torn_write")
                try:
                    server.insert(point) if op == "insert" else server.delete(point)
                except InjectedFault:
                    pass
                os._exit(_CHILD_EXIT)
            # after-wal: the append below is durable, the ack never happens
            if op == "insert":
                server.insert(point)
            else:
                server.delete(point)
            os._exit(_CHILD_EXIT)
        if op == "insert":
            server.insert(point)
        else:
            server.delete(point)
        # The op is applied and (fsync_policy=always) durable: acknowledge.
        acks.write(json.dumps({"i": i, "op": op}) + "\n")
        acks.flush()
        os.fsync(acks.fileno())
    acks.close()
    server.close()
    return 0


def _run_child(directory: Path, seed, n, ops, epochs, kill_after, kill_mode,
               rebuild_at) -> int:
    src_root = Path(__file__).resolve().parents[2]  # .../src
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.pop("REPRO_FAULTS", None)  # the child arms its own faults
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.faults.chaos", "child",
            "--dir", str(directory), "--seed", str(seed), "--n", str(n),
            "--ops", str(ops), "--epochs", str(epochs),
            "--kill-after", str(kill_after), "--kill-mode", kill_mode,
            "--rebuild-at", str(rebuild_at),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    expected = _CHILD_EXIT if 0 <= kill_after < ops else 0
    if proc.returncode != expected:
        raise ChaosError(
            f"chaos child exited {proc.returncode} (expected {expected}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return proc.returncode


def _read_acks(directory: Path) -> int:
    path = directory / "acks.jsonl"
    if not path.exists():
        return 0
    count = 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if entry["i"] != count:
                raise ChaosError(
                    f"acks file out of order: expected op {count}, got {entry['i']}"
                )
            count += 1
    return count


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def kill_and_recover(
    directory: str | Path,
    seed: int = 0,
    n: int = 400,
    ops: int = 48,
    epochs: int = 40,
    kill_after: int | None = None,
    kill_mode: str = "after-wal",
    rebuild_at: int | None = None,
) -> dict:
    """Process-level crash mid-schedule, then recovery from disk alone."""
    if kill_mode not in KILL_MODES:
        raise ValueError(f"kill_mode must be one of {KILL_MODES}, got {kill_mode!r}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(seed + 0xC4A5)
    if kill_after is None:
        kill_after = int(rng.integers(ops // 4, ops))
    if rebuild_at is None:
        rebuild_at = int(rng.integers(ops // 8, max(kill_after, ops // 8 + 1)))
    _run_child(directory, seed, n, ops, epochs, kill_after, kill_mode, rebuild_at)
    n_acked = _read_acks(directory)
    points = load_dataset(_DATASET, n, seed=seed)
    schedule = make_schedule(points, ops, seed)
    server = IndexServer.from_snapshot(directory, wal=True)
    try:
        m = verify_recovery(
            points, schedule, n_acked, server._gen.processor.current_points()
        )
        reference = _reference_processor(seed, n, epochs, schedule, m)
        _assert_query_parity(server, reference, schedule, m)
    finally:
        server.close()
    return {
        "scenario": "kill-and-recover",
        "kill_mode": kill_mode,
        "kill_after": kill_after,
        "rebuild_at": rebuild_at,
        "acked": n_acked,
        "recovered_prefix": m,
        "ok": True,
    }


def torn_snapshot(
    directory: str | Path,
    seed: int = 0,
    n: int = 400,
    ops: int = 32,
    epochs: int = 40,
) -> dict:
    """A torn snapshot write must quarantine + fall back, losing nothing."""
    directory = Path(directory)
    registry = get_fault_registry()
    registry.reset()
    index, points, config, factory = _build_index(seed, n, epochs)
    schedule = make_schedule(points, ops, seed)
    half = ops // 2
    # max_retries=0: the torn write is *not* retried away, so the corrupt
    # file stays on disk as the newest generation — the recovery target.
    server = IndexServer(
        index,
        ServeConfig(max_retries=0),
        elsi_config=config,
        index_factory=factory,
        snapshots=directory,
        wal=True,
    )
    for op, point in schedule[:half]:
        server.insert(point) if op == "insert" else server.delete(point)
    registry.arm("snapshot.write", kind="torn_write", times=1)
    server.rebuild_now()  # swap succeeds; the new snapshot lands torn
    if server.health == HEALTHY:
        raise ChaosError("torn snapshot save should have degraded the server")
    for op, point in schedule[half:]:
        server.insert(point) if op == "insert" else server.delete(point)
    server.close()  # crash boundary: recovery below uses only the disk

    recovered = IndexServer.from_snapshot(directory, wal=True)
    try:
        m = verify_recovery(
            points, schedule, ops, recovered._gen.processor.current_points()
        )
    finally:
        recovered.close()
    quarantined = sorted(p.name for p in directory.glob("*.corrupt"))
    if not quarantined:
        raise ChaosError("recovery did not quarantine the torn snapshot")
    return {
        "scenario": "torn-snapshot",
        "acked": ops,
        "recovered_prefix": m,
        "quarantined": quarantined,
        "faults": registry.report()["triggered"],
        "ok": True,
    }


def rebuild_crash_retry(
    directory: str | Path,
    seed: int = 0,
    n: int = 400,
    ops: int = 32,
    epochs: int = 40,
    crashes: int = 2,
) -> dict:
    """Rebuild attempts crash ``crashes`` times; retries must converge."""
    directory = Path(directory)
    registry = get_fault_registry()
    registry.reset()
    index, points, config, factory = _build_index(seed, n, epochs)
    schedule = make_schedule(points, ops, seed)
    server = IndexServer(
        index,
        ServeConfig(
            max_retries=crashes + 1, retry_base_delay=0.01, retry_max_delay=0.05
        ),
        elsi_config=config,
        index_factory=factory,
        snapshots=directory,
        wal=True,
    )
    for op, point in schedule[: ops // 2]:
        server.insert(point) if op == "insert" else server.delete(point)
    registry.arm("rebuild.worker", kind="error", times=crashes)
    old_generation = server.generation
    server.rebuild_now()
    if server.generation != old_generation + 1:
        raise ChaosError("rebuild did not swap a new generation in after retries")
    if server.health != HEALTHY:
        raise ChaosError(f"health should recover to healthy, is {server.health!r}")
    if registry.triggered("rebuild.worker") != crashes:
        raise ChaosError(
            f"expected {crashes} rebuild crashes, saw "
            f"{registry.triggered('rebuild.worker')}"
        )
    for op, point in schedule[ops // 2 :]:
        server.insert(point) if op == "insert" else server.delete(point)
    retries = dict(server.stats.retries)
    server.close()

    recovered = IndexServer.from_snapshot(directory, wal=True)
    try:
        m = verify_recovery(
            points, schedule, ops, recovered._gen.processor.current_points()
        )
    finally:
        recovered.close()
    return {
        "scenario": "rebuild-crash-retry",
        "acked": ops,
        "recovered_prefix": m,
        "rebuild_crashes": crashes,
        "retries": retries,
        "faults": registry.report()["triggered"],
        "ok": True,
    }


SCENARIOS = {
    "kill-and-recover": kill_and_recover,
    "torn-snapshot": torn_snapshot,
    "rebuild-crash-retry": rebuild_crash_retry,
}


def run_scenarios(
    base_dir: str | Path, names: "list[str] | None" = None, seed: int = 0, **kwargs
) -> dict:
    """Run the named scenarios (default: all) under ``base_dir`` and
    return the combined JSON-able report; raises :class:`ChaosError` on
    the first acknowledged-update loss."""
    base_dir = Path(base_dir)
    reports = []
    for name in names or list(SCENARIOS):
        if name not in SCENARIOS:
            raise ValueError(f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}")
        reports.append(SCENARIOS[name](base_dir / name, seed=seed, **kwargs))
    return {
        "scenarios": reports,
        "fault_report": get_fault_registry().report(),
        "ok": all(r["ok"] for r in reports),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.faults.chaos")
    sub = parser.add_subparsers(dest="role", required=True)
    child = sub.add_parser("child", help="the crashing worker (internal)")
    child.add_argument("--dir", required=True)
    child.add_argument("--seed", type=int, default=0)
    child.add_argument("--n", type=int, default=400)
    child.add_argument("--ops", type=int, default=48)
    child.add_argument("--epochs", type=int, default=40)
    child.add_argument("--kill-after", type=int, default=-1)
    child.add_argument("--kill-mode", choices=KILL_MODES, default="before")
    child.add_argument("--rebuild-at", type=int, default=-1)
    args = parser.parse_args(argv)
    return _child_main(args)


if __name__ == "__main__":
    sys.exit(main())
