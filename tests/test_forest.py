"""Unit tests for the random forests."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor


def test_regressor_fits_smooth_function():
    rng = np.random.default_rng(0)
    x = rng.random((400, 1))
    y = np.sin(3 * x[:, 0])
    forest = RandomForestRegressor(n_estimators=15, max_depth=8, seed=0).fit(x, y)
    pred = forest.predict(x)
    assert np.mean((pred - y) ** 2) < 0.01


def test_regressor_averages_trees():
    x = np.array([[0.0], [1.0]])
    y = np.array([0.0, 1.0])
    forest = RandomForestRegressor(n_estimators=5, seed=0).fit(x, y)
    manual = np.mean([t.predict(x) for t in forest.trees], axis=0)
    np.testing.assert_allclose(forest.predict(x), manual)


def test_classifier_separable():
    rng = np.random.default_rng(1)
    x = np.vstack([rng.normal(0, 0.1, (60, 2)), rng.normal(1, 0.1, (60, 2))])
    y = np.array([0] * 60 + [1] * 60)
    forest = RandomForestClassifier(n_estimators=10, seed=0).fit(x, y)
    assert (forest.predict(x) == y).mean() > 0.95


def test_classifier_proba_rows_sum_to_one():
    rng = np.random.default_rng(2)
    x = rng.random((80, 2))
    y = rng.integers(0, 3, 80)
    forest = RandomForestClassifier(n_estimators=8, seed=0).fit(x, y)
    proba = forest.predict_proba(x[:5])
    assert proba.shape == (5, 3)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0)


def test_classifier_handles_string_labels():
    x = np.array([[0.0], [0.1], [0.9], [1.0]])
    y = np.array(["SP", "SP", "MR", "MR"])
    forest = RandomForestClassifier(n_estimators=5, seed=0).fit(x, y)
    assert forest.predict(np.array([[0.05]]))[0] in ("SP", "MR")


def test_bootstrap_diversity():
    # Different trees should generally see different bootstrap samples.
    rng = np.random.default_rng(3)
    x = rng.random((100, 3))
    y = rng.random(100)
    forest = RandomForestRegressor(n_estimators=5, max_depth=6, seed=0).fit(x, y)
    preds = np.stack([t.predict(x) for t in forest.trees])
    assert np.std(preds, axis=0).mean() > 0


def test_invalid_params():
    with pytest.raises(ValueError):
        RandomForestRegressor(n_estimators=0)
    with pytest.raises(ValueError):
        RandomForestRegressor().fit(np.empty((0, 1)), np.empty(0))


def test_predict_before_fit_rejected():
    with pytest.raises(RuntimeError):
        RandomForestRegressor().predict(np.zeros((1, 1)))
