"""Trace analysis: load a JSONL trace, summarise phases, render span trees.

The ``python -m repro obs report`` CLI is a thin wrapper over this module:
:func:`load_trace` parses the JSON-lines file ``REPRO_TRACE`` produced,
:func:`phase_totals` aggregates wall-clock per span name (the per-phase
cost breakdown — method selection vs. training vs. error bounds vs. query
refinement, the decomposition Pai et al. show explains learned-index
performance), and :func:`render_tree` prints the nested span structure.

Spans land in the file at *exit* time, so children precede parents on
disk; tree construction keys off the recorded parent ids, not file order.
"""

from __future__ import annotations

import json

from repro.obs.trace import SpanRecord

__all__ = [
    "build_tree",
    "load_trace",
    "missing_spans",
    "phase_totals",
    "render_report",
    "render_tree",
]


def load_trace(path: str) -> list[SpanRecord]:
    """Parse a JSONL trace file into span records (file order)."""
    records: list[SpanRecord] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(SpanRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed span line: {exc}") from exc
    return records


def build_tree(
    records: list[SpanRecord],
) -> tuple[list[SpanRecord], dict[str, list[SpanRecord]]]:
    """Return ``(roots, children_by_parent_id)``, both sorted by start time.

    A span whose parent never completed (ring-buffer eviction, crash
    mid-span) is treated as a root rather than dropped.
    """
    by_id = {r.span_id: r for r in records}
    roots: list[SpanRecord] = []
    children: dict[str, list[SpanRecord]] = {}
    for r in records:
        if r.parent_id is not None and r.parent_id in by_id:
            children.setdefault(r.parent_id, []).append(r)
        else:
            roots.append(r)
    roots.sort(key=lambda r: r.start)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.start)
    return roots, children


def phase_totals(records: list[SpanRecord]) -> dict[str, dict]:
    """Aggregate per span name: count, total/mean/max seconds, self seconds.

    ``self_seconds`` subtracts the time attributed to a span's (recorded)
    children, so nested phases don't double-count in the breakdown.
    """
    child_time: dict[str, float] = {}
    for r in records:
        if r.parent_id is not None:
            child_time[r.parent_id] = child_time.get(r.parent_id, 0.0) + r.duration
    totals: dict[str, dict] = {}
    for r in records:
        entry = totals.setdefault(
            r.name,
            {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0, "self_seconds": 0.0},
        )
        entry["count"] += 1
        entry["total_seconds"] += r.duration
        entry["self_seconds"] += max(0.0, r.duration - child_time.get(r.span_id, 0.0))
        if r.duration > entry["max_seconds"]:
            entry["max_seconds"] = r.duration
    for entry in totals.values():
        entry["mean_seconds"] = entry["total_seconds"] / entry["count"]
    return totals


def missing_spans(records: list[SpanRecord], required: list[str]) -> list[str]:
    """The required span names absent from the trace (CI smoke assertion)."""
    present = {r.name for r in records}
    return [name for name in required if name not in present]


def _format_attrs(attrs: dict, limit: int = 4) -> str:
    if not attrs:
        return ""
    shown = list(attrs.items())[:limit]
    text = ", ".join(f"{k}={v}" for k, v in shown)
    if len(attrs) > limit:
        text += ", ..."
    return f" [{text}]"


def render_tree(
    records: list[SpanRecord],
    max_depth: int = 12,
    min_seconds: float = 0.0,
    max_children: int = 20,
) -> str:
    """The nested span structure as an indented text tree."""
    roots, children = build_tree(records)
    lines: list[str] = []

    def emit(record: SpanRecord, depth: int) -> None:
        if record.duration < min_seconds and depth > 0:
            return
        indent = "  " * depth
        lines.append(
            f"{indent}{record.name}  {record.duration * 1e3:9.3f} ms"
            f"{_format_attrs(record.attrs)}"
        )
        if depth + 1 >= max_depth:
            return
        kids = children.get(record.span_id, [])
        for child in kids[:max_children]:
            emit(child, depth + 1)
        if len(kids) > max_children:
            lines.append(f"{'  ' * (depth + 1)}... ({len(kids) - max_children} more)")

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def render_phase_table(records: list[SpanRecord]) -> str:
    """The per-phase cost breakdown as an aligned text table."""
    totals = phase_totals(records)
    if not totals:
        return "(no spans)"
    rows = sorted(totals.items(), key=lambda kv: -kv[1]["total_seconds"])
    name_w = max(len("phase"), max(len(name) for name in totals))
    header = (
        f"{'phase':<{name_w}}  {'count':>7}  {'total':>10}  {'self':>10}"
        f"  {'mean':>10}  {'max':>10}"
    )
    lines = [header, "-" * len(header)]
    for name, entry in rows:
        lines.append(
            f"{name:<{name_w}}  {entry['count']:>7d}"
            f"  {entry['total_seconds'] * 1e3:>8.2f}ms"
            f"  {entry['self_seconds'] * 1e3:>8.2f}ms"
            f"  {entry['mean_seconds'] * 1e3:>8.2f}ms"
            f"  {entry['max_seconds'] * 1e3:>8.2f}ms"
        )
    return "\n".join(lines)


def render_report(
    records: list[SpanRecord],
    max_depth: int = 12,
    min_seconds: float = 0.0,
) -> str:
    """Phase breakdown followed by the span tree — the CLI's output."""
    n_processes = len({r.pid for r in records})
    parts = [
        f"{len(records)} spans from {n_processes} process(es)",
        "",
        "Per-phase cost breakdown",
        render_phase_table(records),
        "",
        "Span tree",
        render_tree(records, max_depth=max_depth, min_seconds=min_seconds),
    ]
    return "\n".join(parts)
