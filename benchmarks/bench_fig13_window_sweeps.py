"""Figure 13 — window query time vs lambda and vs window size (OSM1).

Paper shapes to hold: (a) window times grow only slowly with lambda;
(b) query times increase with window size for every index, and the -F
indices do not grow faster than the RR* / RSMI references.
"""

import numpy as np

from repro.bench.experiments import fig13_window_sweeps
from repro.bench.harness import format_table


def test_fig13_window_sweeps(ctx, benchmark):
    result = benchmark.pedantic(
        fig13_window_sweeps, args=(ctx,), rounds=1, iterations=1
    )

    print()
    by_lambda = result["by_lambda"]
    lams = [lam for lam, _ in next(iter(by_lambda.values()))]
    rows = [
        [label] + [f"{us:.0f}" for _l, us in series]
        for label, series in by_lambda.items()
    ]
    print(format_table(["index"] + [f"lam={l}" for l in lams], rows,
                       title="Figure 13(a): window time (us) vs lambda on OSM1"))

    by_size = result["by_size"]
    fractions = [f for f, _ in next(iter(by_size.values()))]
    rows = [
        [label] + [f"{us:.0f}" for _f, us in series]
        for label, series in by_size.items()
    ]
    print(format_table(
        ["index"] + [f"{f*100:.4f}%" for f in fractions], rows,
        title="Figure 13(b): window time (us) vs window size on OSM1",
    ))

    # (a) slow growth with lambda.
    for label, series in by_lambda.items():
        us = [v for _l, v in series]
        assert max(us) < 3.0 * min(us) + 50, (label, us)

    # (b) result counts grow with window size for every index, and the
    # output-sensitive RR* gets strictly slower; learned-index times may be
    # flat at small n where error-bound scans dominate, but must not *grow*
    # faster than ~4x the RR* growth factor (the paper's robustness claim).
    counts = result["by_size_counts"]
    for label, series in counts.items():
        assert series[-1] > series[0], (label, series)
    rr = by_size["RR*"]
    assert rr[-1][1] > rr[0][1], ("RR*", rr)
    growth = {
        label: series[-1][1] / max(series[0][1], 1e-9)
        for label, series in by_size.items()
    }
    for label in ("ML-F", "LISA-F", "RSMI-F"):
        assert growth[label] < 4.0 * growth["RR*"] + 4.0, (label, growth)
