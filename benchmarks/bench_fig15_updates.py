"""Figure 15 — skewed insertions: insert time and point-query time vs ratio.

10% of OSM1 as the initial build; Skewed points inserted up to 128% of the
base cardinality.  -F variants never rebuild; -R variants consult
``to_rebuild`` after every batch; RR* uses its native self-balancing insert.

Paper shapes to hold: RR* insert times grow gradually; learned-index point
query times degrade as skewed inserts accumulate; global rebuilds (-R)
bring query times back down (19% / 47% lower for ML-R / RSMI-R at 512% in
the paper).
"""

import numpy as np

from repro.bench.experiments import fig15_updates
from repro.bench.harness import format_table


def test_fig15_updates(ctx, benchmark):
    result = benchmark.pedantic(fig15_updates, args=(ctx,), rounds=1, iterations=1)

    print()
    ratios = [m["ratio"] for m in next(iter(result.values()))]
    for metric, title in (
        ("insert_us", "Figure 15(a): insertion time (us) vs insertion ratio"),
        ("point_us", "Figure 15(b): point query time (us) vs insertion ratio"),
    ):
        rows = [
            [label] + [f"{m[metric]:.1f}" for m in series]
            for label, series in result.items()
        ]
        print(format_table(
            ["index"] + [f"{r*100:.0f}%" for r in ratios], rows, title=title
        ))
    rebuild_points = {
        label: [m["ratio"] for m in series if m["rebuilt"]]
        for label, series in result.items()
        if label.endswith("-R")
    }
    print(f"\nrebuilds triggered at ratios: {rebuild_points}")

    # At least one -R variant actually rebuilt under heavy skewed inserts.
    assert any(rebuild_points.values())
    # Rebuilds pay off: final point-query times of -R <= their -F twins
    # (allowing measurement noise).
    for learned in ("ML", "RSMI", "LISA"):
        f_final = result[f"{learned}-F"][-1]["point_us"]
        r_final = result[f"{learned}-R"][-1]["point_us"]
        assert r_final < f_final * 1.6, (learned, r_final, f_final)
