"""CL: clustering-based training-set construction (Section V-A2).

Clusters ``D`` in the *original* space with k-means and uses the ``C``
centroids as ``D_S``.  Centroids are generally not members of ``D``, so the
base index's ``map()`` converts them to keys (hence ``requires_map_fn``),
and they are sorted in the mapped space before training.

The paper's noted limitation is reproduced by construction: the k-means
pass costs ``O(C * n * d * i)``, which dominates the method's extra time
and puts CL at the slow-build end of Figure 7.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.methods.base import BuildMethod, MethodResult
from repro.indices.base import MapFn
from repro.spatial.kmeans import kmeans

__all__ = ["ClusteringMethod"]


class ClusteringMethod(BuildMethod):
    """CL: k-means centroids as the training set."""

    name = "CL"
    requires_map_fn = True

    def __init__(self, n_clusters: int = 100, max_iterations: int = 10, seed: int = 0) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.seed = seed

    def compute_set(
        self,
        sorted_keys: np.ndarray,
        sorted_points: np.ndarray,
        map_fn: MapFn | None,
    ) -> MethodResult:
        if map_fn is None:
            raise ValueError("CL needs the base index's map() for centroids")
        n = len(sorted_points)
        started = time.perf_counter()
        k = min(self.n_clusters, n)
        result = kmeans(
            sorted_points, k, max_iterations=self.max_iterations, seed=self.seed
        )
        centroid_keys = np.asarray(map_fn(result.centroids), dtype=np.float64)
        order = np.argsort(centroid_keys, kind="stable")
        keys = centroid_keys[order]
        # Synthetic points: targets are ranks within D_S (see methods.base).
        ranks = self._self_ranks(len(keys))
        return MethodResult(keys, ranks, time.perf_counter() - started)
