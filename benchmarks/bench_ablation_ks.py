"""Ablation — the Section III KS-distance algorithm choice.

The paper replaces the classical O(n_S + n) merge scan with an
O(n_S log n) binary-search scan over the small set only, arguing it wins
because n_S << n.  This benchmark verifies both the correctness equivalence
and the performance claim, and locates the regime where it holds.
"""

import numpy as np

from repro.bench.harness import format_table, time_call
from repro.spatial.cdf import ks_distance, ks_distance_reference


def test_ablation_ks_distance(ctx, benchmark):
    rng = np.random.default_rng(0)
    n = max(ctx.scale.n * 10, 100_000)
    large = np.sort(rng.random(n))

    def run():
        rows = []
        for n_s in (100, 1_000, 10_000, n // 2):
            small = np.sort(rng.random(n_s))
            fast, fast_seconds = time_call(
                lambda: ks_distance(small, large, assume_sorted=True)
            )
            ref, ref_seconds = time_call(lambda: ks_distance_reference(small, large))
            rows.append(
                {
                    "n_s": n_s,
                    "fast_us": fast_seconds * 1e6,
                    "reference_us": ref_seconds * 1e6,
                    "agree": abs(fast - ref) < 1e-12,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(format_table(
        ["n_S", "O(n_S log n) (us)", "O(n_S + n) (us)", "agree"],
        [[r["n_s"], f"{r['fast_us']:.0f}", f"{r['reference_us']:.0f}", r["agree"]] for r in rows],
        title=f"Ablation: KS algorithms, n = {n:,}",
    ))

    assert all(r["agree"] for r in rows)
    # The paper's claim: for n_S << n, the binary-search variant wins.
    small_regime = [r for r in rows if r["n_s"] <= 1_000]
    assert all(r["fast_us"] < r["reference_us"] for r in small_regime)
