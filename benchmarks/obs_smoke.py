"""Observability smoke: a tiny traced build + query + serve + rebuild run.

Run with the trace sink enabled::

    REPRO_TRACE=obs_trace.jsonl PYTHONPATH=src python benchmarks/obs_smoke.py

Exercises every instrumented path — ELSI build (method selection, training
set, FFN training, error bounds), batch point/window/knn queries, the
executor, a serve session with a generation rebuild, and a 2-shard
cluster answering a mixed batch with cross-process trace propagation —
then writes the metric registries to ``obs_metrics.json`` and the fleet's
``/metrics`` endpoint text to ``obs_fleet_metrics.txt``.  CI renders the
trace with ``python -m repro obs report`` and asserts the
acceptance-criteria spans are present — including the adopted-from-worker
``serve.dispatch`` children under ``shard.scatter`` via
``--require-cross`` (see ``.github/workflows/ci.yml``).
"""

import json
import os
import sys
import urllib.request

import numpy as np

from repro.core.config import ELSIConfig
from repro.core.elsi import ELSI
from repro.indices.zm import ZMIndex
from repro.serve.server import IndexServer
from repro.spatial.rect import Rect

N_POINTS = 3_000


def main() -> int:
    if not os.environ.get("REPRO_TRACE"):
        print("warning: REPRO_TRACE is not set; no trace file will be written")

    rng = np.random.default_rng(0)
    pts = rng.random((N_POINTS, 2))
    elsi = ELSI(ELSIConfig(lam=0.5, train_epochs=80))

    index = elsi.build(ZMIndex, pts)
    index.point_queries(pts[:128])
    index.window_queries(
        [Rect((0.1, 0.1), (0.2, 0.2)), Rect((0.4, 0.4), (0.6, 0.6))]
    )
    index.knn_queries(pts[:8], 5)

    # The level-wise RSMI build: rsmi.fit_level spans with one perf.map
    # dispatch per tree level, plus traced point/window queries.
    from repro.indices.rsmi import RSMIIndex

    rsmi = RSMIIndex(builder=elsi.builder(), leaf_capacity=500).build(pts)
    rsmi.point_query(pts[0])
    rsmi.window_query(Rect((0.3, 0.3), (0.5, 0.5)))
    # Batch overrides: the shared-DFS window walk (rsmi.window_batch) and
    # expanding-window kNN riding on it.
    rsmi.window_queries([Rect((0.1, 0.1), (0.25, 0.25)), Rect((0.6, 0.6), (0.8, 0.8))])
    rsmi.knn_queries(pts[:4], 3)

    server = IndexServer(index, index_factory=lambda: ZMIndex(builder=elsi.builder()))
    with server:
        replies = [server.submit_point(p) for p in pts[:32]]
        window_reply = server.submit_window(Rect((0.2, 0.2), (0.35, 0.35)))
        for reply in replies:
            reply.wait(30)
        window_reply.wait(30)
        server.insert(np.array([0.42, 0.42]))
        server.rebuild_now()
        metrics = server.stats_snapshot()

    # Sharded tier: a 2-shard cluster answering a mixed point/window/kNN
    # batch.  Every scatter carries the trace context, so the workers'
    # serve.dispatch spans come back adopted under shard.scatter — the
    # cross-process tree the CI --require-cross assertion keys on.
    import tempfile

    from repro.shard import RouterConfig, build_cluster

    with tempfile.TemporaryDirectory(prefix="obs-smoke-shard-") as tmp:
        router = build_cluster(
            pts,
            os.path.join(tmp, "cluster"),
            n_shards=2,
            elsi={"train_epochs": 30, "seed": 0},
            serve={"max_wait_seconds": 0.0},
            router_config=RouterConfig(
                slo_targets={"point": 1.0, "window": 1.0, "knn": 1.0},
                telemetry_interval=0.2,
            ),
        )
        with router:
            hits = router.point_queries(pts[:256])
            assert bool(hits.all()), "sharded point misses on member points"
            router.window_queries(
                [Rect((0.1, 0.1), (0.3, 0.3)), Rect((0.5, 0.5), (0.9, 0.9))]
            )
            router.knn_queries(pts[:8], 5)
            router.insert(np.array([0.17, 0.83]))
            import time as _time

            _time.sleep(0.5)  # let the telemetry poller scrape at least once
            endpoint = router.serve_metrics(port=0)
            with urllib.request.urlopen(
                endpoint.url + "/metrics", timeout=10.0
            ) as resp:
                fleet_text = resp.read().decode("utf-8")
            fleet_stats = router.stats_snapshot()
        for required in (
            "telemetry.scrape_age_seconds",
            "telemetry.shard_up",
            "slo.p99_seconds",
            "slo.burn_rate",
            "worker.cpu_seconds",
        ):
            assert required in fleet_stats, f"{required} missing from fleet stats"
            assert required in fleet_text, f"{required} missing from /metrics"

    with open("obs_fleet_metrics.txt", "w") as fh:
        fh.write(fleet_text)
    print(f"wrote obs_fleet_metrics.txt ({len(fleet_text.splitlines())} lines)")
    with open("obs_metrics.json", "w") as fh:
        json.dump(metrics, fh, indent=2, sort_keys=True)
    print(f"wrote obs_metrics.json ({len(metrics)} metric families)")
    trace_path = os.environ.get("REPRO_TRACE")
    if trace_path and os.path.exists(trace_path):
        with open(trace_path) as fh:
            n_spans = sum(1 for line in fh if line.strip())
        print(f"wrote {trace_path} ({n_spans} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
