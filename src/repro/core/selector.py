"""Method-selector training and evaluation (Sections IV-B1, VII-B2, VII-C).

Ground truth.  Following Section VII-B2, data sets are generated for a grid
of cardinalities (``10^l .. 10^u``) and distributions (``dist(D_U, D)``
from 0.0 to 0.9).  For each data set every applicable method builds an
index and point queries are run; the measured build/query speedups relative
to OG form one :class:`DatasetRecord`.  The paper's setting (l=4, u=8,
6 methods, 10 distances) yields 300 combinations; the scale here is a
parameter.

Selectors.  The FFN selector is :class:`repro.core.scorer.MethodScorer`.
For Figure 6(b) this module adds the four comparison selectors: random
forests and decision trees, each in a regression variant (R — predict the
two cost scores, then apply Equation 2) and a classification variant (C —
predict the best method label directly, trained per λ).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.build_processor import ELSIModelBuilder
from repro.core.config import ELSIConfig
from repro.core.scorer import MethodScorer, ScorerSample, build_score, query_score
from repro.data.controlled import dataset_with_uniform_distance
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.obs.trace import span as _span
from repro.perf.executor import MapExecutor, resolve_executor, serial_nested
from repro.spatial.cdf import uniform_dissimilarity
from repro.spatial.rect import Rect
from repro.spatial.zcurve import zvalues

__all__ = [
    "DatasetRecord",
    "TreeSelector",
    "best_method",
    "collect_selector_data",
    "records_to_samples",
    "selector_accuracy",
    "train_ffn_selector",
]


def _warm_mr_pool(config: ELSIConfig) -> None:
    """Pre-train MR's model pool before any timed build.

    Pool preparation is an offline, one-off cost in the paper
    (Section VII-B2); warming it here keeps it out of measured build times.
    """
    if "MR" not in config.methods:
        return
    from repro.core.methods.model_reuse import ModelReuseMethod

    ModelReuseMethod(
        epsilon=config.epsilon,
        hidden_size=config.hidden_size,
        train_epochs=config.train_epochs,
        seed=config.seed,
    ).prepare()


@dataclass
class DatasetRecord:
    """Measured speedups of every method on one generated data set."""

    n: int
    dist_u: float
    speedups: dict[str, tuple[float, float]] = field(default_factory=dict)

    def methods(self) -> list[str]:
        return list(self.speedups)


@dataclass
class _CellJob:
    """One (cardinality, delta) grid cell, packaged for executor dispatch.

    Pure data plus the user's ``index_factory`` — picklable as long as the
    factory is (a module-level function; required for the process backend).
    """

    index_factory: Callable
    config: ELSIConfig
    n: int
    delta: float
    seed: int
    n_queries: int
    query_kind: str
    #: Set when the grid itself runs on a pool: nested build dispatch inside
    #: the worker is forced serial so cells never open pools of their own.
    nested_serial: bool = False


def _og_baseline(timings: dict[str, tuple[float, float]]) -> tuple[float, float]:
    """OG's (build, query) times, or the per-component max when OG was not
    measured.  The components are taken independently: a tuple-max would
    compare lexicographically and could pair the slowest build with an
    unrelated (possibly fast) query time."""
    if "OG" in timings:
        return timings["OG"]
    return (
        max(bt for bt, _qt in timings.values()),
        max(qt for _bt, qt in timings.values()),
    )


def _measure_cell(job: _CellJob) -> DatasetRecord:
    """Build + query every method on one generated data set (executor job).

    All ``time.perf_counter`` measurements happen here, inside the worker,
    so per-cell timings stay valid under thread/process dispatch; only the
    finished :class:`DatasetRecord` travels back to the parent.
    """
    if job.nested_serial:
        with serial_nested():
            return _measure_cell_inner(job)
    return _measure_cell_inner(job)


def _measure_cell_inner(job: _CellJob) -> DatasetRecord:
    cfg = job.config
    # Idempotent; keeps MR pool preparation out of the timed builds even
    # when the worker did not inherit the parent's warm pool (spawn start
    # methods copy nothing).
    _warm_mr_pool(cfg)
    with _span("selector.cell", n=job.n, delta=job.delta) as cell_span:
        points = dataset_with_uniform_distance(job.n, job.delta, seed=job.seed)
        keys = np.sort(zvalues(points, Rect.bounding(points)).astype(np.float64))
        dist_u = uniform_dissimilarity(keys, assume_sorted=True)
        cell_span.set(dist_u=round(dist_u, 4))
        record = DatasetRecord(n=job.n, dist_u=dist_u)
        timings: dict[str, tuple[float, float]] = {}
        rng = np.random.default_rng(job.seed)
        query_ids = rng.integers(0, job.n, size=min(job.n_queries, job.n))
        if job.query_kind == "window":
            from repro.queries.workload import window_workload

            windows = window_workload(
                points, max(job.n_queries // 5, 5), 1e-3, seed=job.seed
            )
        for method in cfg.methods:
            with _span("selector.method", method=method, n=job.n):
                builder = ELSIModelBuilder(cfg, method=method)
                started = time.perf_counter()
                index = job.index_factory(builder)
                index.build(points)
                build_time = time.perf_counter() - started
                started = time.perf_counter()
                if job.query_kind == "point":
                    for qi in query_ids:
                        index.point_query(points[qi])
                else:
                    for window in windows:
                        window.run(index)
                query_time = time.perf_counter() - started
                timings[method] = (build_time, query_time)
        og_build, og_query = _og_baseline(timings)
        for method, (bt, qt) in timings.items():
            record.speedups[method] = (
                og_build / max(bt, 1e-9),
                og_query / max(qt, 1e-9),
            )
    return record


def collect_selector_data(
    index_factory,
    config: ELSIConfig | None = None,
    cardinalities: tuple[int, ...] = (500, 1_000, 2_000, 5_000, 10_000),
    deltas: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    n_queries: int = 200,
    seed: int = 0,
    query_kind: str = "point",
    executor: "MapExecutor | str | None" = None,
) -> list[DatasetRecord]:
    """Measure per-method build and query speedups over the (n, dist) grid.

    ``index_factory(builder)`` constructs the base index under test.  The
    distribution feature ``dist_u`` is measured from the data's Z-value keys
    — the same statistic the build processor computes online.

    ``query_kind`` selects the query cost the scorer optimises: ``"point"``
    (the paper's choice — "point queries are building blocks for more
    complex queries") or ``"window"`` (the paper: "Costs of other query
    types, e.g., window queries, can also be considered").

    Grid cells are independent build+query measurements, so they dispatch
    through a :class:`~repro.perf.executor.MapExecutor`: ``executor`` (a
    backend spec such as ``"process:4"`` or an instance) takes precedence
    over ``config.parallelism``, and ``REPRO_PARALLELISM`` overrides both.
    The process backend sidesteps the GIL — the right choice here, since
    cell builds are dominated by Python-level training loops — but needs a
    picklable ``index_factory`` (a module-level function, not a lambda).
    Each cell times itself inside its worker, so per-cell speedups remain
    valid under parallel dispatch; inside workers any nested build
    parallelism is forced serial so cells never open pools of their own.
    """
    if query_kind not in ("point", "window"):
        raise ValueError(f"query_kind must be 'point' or 'window', got {query_kind!r}")
    cfg = config or ELSIConfig()
    # Warm MR in the parent: fork-started workers inherit the pool.
    _warm_mr_pool(cfg)
    ex = resolve_executor(
        executor
        if executor is not None
        else MapExecutor(
            backend=cfg.parallelism, max_workers=cfg.parallel_workers
        )
    )
    pooled = ex.backend in ("thread", "process")
    jobs = [
        _CellJob(
            index_factory=index_factory,
            config=cfg,
            n=n,
            delta=delta,
            seed=seed + i,
            n_queries=n_queries,
            query_kind=query_kind,
            nested_serial=pooled,
        )
        for n in cardinalities
        for i, delta in enumerate(deltas)
    ]
    with _span(
        "selector.collect",
        cells=len(jobs),
        methods=len(cfg.methods),
        query_kind=query_kind,
        backend=ex.backend,
    ):
        return ex.submit_many([(_measure_cell, (job,)) for job in jobs])


def records_to_samples(records: list[DatasetRecord]) -> list[ScorerSample]:
    """Flatten records into per-(method, data set) scorer training rows."""
    samples: list[ScorerSample] = []
    for record in records:
        for method, (bs, qs) in record.speedups.items():
            samples.append(
                ScorerSample(
                    method=method,
                    n=record.n,
                    dist_u=record.dist_u,
                    build_speedup=bs,
                    query_speedup=qs,
                )
            )
    return samples


def best_method(record: DatasetRecord, lam: float, w_q: float = 1.0) -> str:
    """Ground-truth Equation 2 winner from *measured* speedups."""
    best_name = None
    best_score = -np.inf
    for method, (bs, qs) in record.speedups.items():
        score = lam * build_score(bs) + (1.0 - lam) * w_q * query_score(qs)
        if score > best_score:
            best_name, best_score = method, score
    assert best_name is not None
    return best_name


def train_ffn_selector(
    records: list[DatasetRecord],
    method_names: tuple[str, ...] | None = None,
    epochs: int = 1500,
    seed: int = 0,
) -> MethodScorer:
    """Fit the paper's FFN method scorer on collected records."""
    if not records:
        raise ValueError("need at least one record")
    if method_names is None:
        method_names = tuple(records[0].methods())
    scorer = MethodScorer(method_names=method_names, seed=seed)
    with _span("selector.train", records=len(records), epochs=epochs):
        scorer.fit(records_to_samples(records), epochs=epochs, seed=seed)
    return scorer


class TreeSelector:
    """The RFR / RFC / DTR / DTC comparison selectors of Figure 6(b).

    Regression variants learn the two cost scores from (one-hot method,
    log-cardinality, dist) features and apply Equation 2 at selection time;
    classification variants learn the winning method label directly from
    (log-cardinality, dist), so they must be fitted per λ.
    """

    KINDS = ("RFR", "RFC", "DTR", "DTC")

    def __init__(self, kind: str, seed: int = 0) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}, got {kind!r}")
        self.kind = kind
        self.seed = seed
        self.method_names: tuple[str, ...] = ()
        self._build_model = None
        self._query_model = None
        self._classifier = None
        self._fitted_lam: float | None = None

    @property
    def is_regression(self) -> bool:
        return self.kind.endswith("R")

    def _make_regressor(self):
        if self.kind == "RFR":
            return RandomForestRegressor(n_estimators=20, max_depth=10, seed=self.seed)
        return DecisionTreeRegressor(max_depth=10, seed=self.seed)

    def _make_classifier(self):
        if self.kind == "RFC":
            return RandomForestClassifier(n_estimators=20, max_depth=10, seed=self.seed)
        return DecisionTreeClassifier(max_depth=10, seed=self.seed)

    def _features(self, method: str, n: int, dist_u: float) -> np.ndarray:
        row = np.zeros(len(self.method_names) + 2)
        row[self.method_names.index(method)] = 1.0
        row[-2] = np.log10(n) / 8.0
        row[-1] = dist_u
        return row

    def fit(
        self, records: list[DatasetRecord], lam: float = 0.8, w_q: float = 1.0
    ) -> "TreeSelector":
        if not records:
            raise ValueError("need at least one record")
        self.method_names = tuple(records[0].methods())
        if self.is_regression:
            samples = records_to_samples(records)
            x = np.stack([self._features(s.method, s.n, s.dist_u) for s in samples])
            yb = np.array([build_score(s.build_speedup) for s in samples])
            yq = np.array([query_score(s.query_speedup) for s in samples])
            self._build_model = self._make_regressor().fit(x, yb)
            self._query_model = self._make_regressor().fit(x, yq)
        else:
            x = np.stack(
                [[np.log10(r.n) / 8.0, r.dist_u] for r in records]
            )
            y = np.array([best_method(r, lam, w_q) for r in records])
            self._classifier = self._make_classifier().fit(x, y)
            self._fitted_lam = lam
        return self

    def select(
        self,
        n: int,
        dist_u: float,
        methods: list[str],
        lam: float,
        w_q: float = 1.0,
    ) -> str:
        if self.is_regression:
            if self._build_model is None or self._query_model is None:
                raise RuntimeError("selector is not fitted")
            x = np.stack([self._features(m, n, dist_u) for m in methods])
            scores = lam * self._build_model.predict(x) + (
                1.0 - lam
            ) * w_q * self._query_model.predict(x)
            return methods[int(np.argmax(scores))]
        if self._classifier is None:
            raise RuntimeError("selector is not fitted")
        if self._fitted_lam is not None and abs(self._fitted_lam - lam) > 1e-9:
            raise ValueError(
                f"classification selector was fitted for lambda={self._fitted_lam}, "
                f"asked to select for lambda={lam}; refit per lambda"
            )
        label = str(self._classifier.predict([[np.log10(n) / 8.0, dist_u]])[0])
        if label in methods:
            return label
        # Predicted method inapplicable here: fall back to the first candidate.
        return methods[0]


def selector_accuracy(
    selector, records: list[DatasetRecord], lam: float, w_q: float = 1.0
) -> float:
    """Fraction of records where the selector picks the measured best method."""
    if not records:
        raise ValueError("need at least one record")
    correct = 0
    for record in records:
        truth = best_method(record, lam, w_q)
        predicted = selector.select(
            n=record.n,
            dist_u=record.dist_u,
            methods=record.methods(),
            lam=lam,
            w_q=w_q,
        )
        correct += predicted == truth
    return correct / len(records)
