"""Metric primitives: counters, gauges, and log-bucket histograms.

:class:`MetricsRegistry` is the one place metrics live.  Call sites ask the
registry for a named instrument (``registry.counter("serve.requests",
kind="point")``) and get the same object back on every call with the same
name + labels, so recording is a plain attribute update behind one lock
acquisition.  The registry exports everything at once — as a JSON-able
dict (:meth:`MetricsRegistry.export`) or as Prometheus-style text lines
(:meth:`MetricsRegistry.export_text`).

:class:`Histogram` generalises the log-spaced latency histogram that used
to be private to ``repro.serve.stats.ServerStats``: doubling buckets above
a configurable base, upper-bound percentile estimates, exact
count/total/max alongside, and mergeability (for folding worker-process
histograms into a parent's).

Naming convention: dotted lowercase ``subsystem.thing`` names
(``serve.batch_size``, ``query.predicted_range_width``); labels carry the
cardinality (``kind="point"``), never the name.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "registry_from_export",
]

#: Canonical label encoding: a sorted tuple of (key, value-string) pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (queue depth, generation age).

    Every write stamps ``updated_at`` (wall clock), which is what lets
    :meth:`MetricsRegistry.merge` pick the freshest value when folding
    several exported snapshots into one fleet-wide view.
    """

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self.updated_at = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updated_at = time.time()

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount
        self.updated_at = time.time()

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount
        self.updated_at = time.time()

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Log-spaced histogram: doubling buckets above ``base``.

    Bucket ``i`` covers ``(base * 2**(i-1), base * 2**i]`` for ``i >= 1``
    and ``[0, base]`` for bucket 0; the last bucket absorbs everything
    larger.  Percentiles are estimated from bucket upper bounds —
    pessimistic by at most one doubling.  Exact count/total/max are kept
    alongside, and two histograms with the same shape merge by adding
    their buckets (:meth:`merge`), which is how spans' worker-process
    histograms fold back into the parent.
    """

    kind = "histogram"

    def __init__(self, base: float = 1e-6, n_buckets: int = 28) -> None:
        if base <= 0:
            raise ValueError(f"base must be > 0, got {base}")
        if n_buckets < 1:
            raise ValueError(f"n_buckets must be >= 1, got {n_buckets}")
        self.base = float(base)
        self.n_buckets = int(n_buckets)
        self.counts = np.zeros(self.n_buckets, dtype=np.int64)
        self.total = 0.0
        self.max = 0.0

    # ------------------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """The bucket ``value`` falls into (the reference doubling loop)."""
        bucket = 0
        scaled = value / self.base
        while scaled > 1.0 and bucket < self.n_buckets - 1:
            scaled /= 2.0
            bucket += 1
        return bucket

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """Half-open ``(lo, hi]`` value bounds of bucket ``index``."""
        if not 0 <= index < self.n_buckets:
            raise IndexError(f"bucket {index} out of range [0, {self.n_buckets})")
        lo = 0.0 if index == 0 else self.base * 2.0 ** (index - 1)
        hi = self.base * 2.0**index
        return lo, hi

    def record(self, value: float, count: int = 1) -> None:
        """Record ``value`` — ``count`` times at once, for call sites where
        every member of a batch observed the same latency."""
        self.counts[self.bucket_index(value)] += count
        self.total += value * count
        if value > self.max:
            self.max = value

    def record_many(self, values: "list[float] | np.ndarray") -> None:
        for v in values:
            self.record(float(v))

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram (same shape only)."""
        if other.base != self.base or other.n_buckets != self.n_buckets:
            raise ValueError(
                f"cannot merge histogram(base={other.base}, n={other.n_buckets}) "
                f"into histogram(base={self.base}, n={self.n_buckets})"
            )
        self.counts += other.counts
        self.total += other.total
        if other.max > self.max:
            self.max = other.max

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return int(self.counts.sum())

    @property
    def mean(self) -> float:
        n = self.count
        return self.total / n if n else 0.0

    def percentile(self, q: float) -> float:
        """Upper-bound estimate of the q-th percentile (q in [0, 100])."""
        n = self.count
        if n == 0:
            return 0.0
        rank = max(1, int(np.ceil(q / 100.0 * n)))
        cumulative = np.cumsum(self.counts)
        bucket = int(np.searchsorted(cumulative, rank))
        return self.base * (2.0 ** (bucket + 1))

    def snapshot(self) -> dict:
        """Summary stats plus the raw shape/buckets, so a snapshot taken in
        one process can be merged losslessly into another registry
        (:meth:`MetricsRegistry.merge`) — percentiles of the merged
        histogram come out right because the bucket counts travel."""
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "total": self.total,
            "base": self.base,
            "n_buckets": self.n_buckets,
            "buckets": self.counts.tolist(),
        }


class MetricsRegistry:
    """Thread-safe get-or-create home for named instruments.

    The same (name, labels) pair always returns the same instrument, so
    hot paths can re-ask the registry instead of threading instrument
    objects around.  Asking for an existing name with a different
    instrument kind (or histogram shape) is a bug and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, LabelKey], object] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, labels: dict, factory, kind: str):
        if not name:
            raise ValueError("metric name must be non-empty")
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
            elif instrument.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}, "
                    f"asked for {kind}"
                )
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(name, labels, Counter, "counter")

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(name, labels, Gauge, "gauge")

    def histogram(
        self, name: str, base: float = 1e-6, n_buckets: int = 28, **labels
    ) -> Histogram:
        hist = self._get_or_create(
            name, labels, lambda: Histogram(base=base, n_buckets=n_buckets), "histogram"
        )
        if hist.base != base or hist.n_buckets != n_buckets:
            raise ValueError(
                f"histogram {name!r} already registered with base={hist.base}, "
                f"n_buckets={hist.n_buckets}"
            )
        return hist

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every instrument (tests and process-lifetime resets)."""
        with self._lock:
            self._instruments.clear()

    def export(self) -> dict:
        """JSON-able dump: ``{name: [{labels, kind, value}, ...]}``.

        Gauge entries carry an ``updated_at`` wall-clock stamp so
        :meth:`merge` can keep the freshest value across snapshots."""
        with self._lock:
            items = list(self._instruments.items())
        out: dict[str, list] = {}
        for (name, labels), instrument in sorted(items, key=lambda kv: kv[0]):
            entry = {
                "labels": dict(labels),
                "kind": instrument.kind,
                "value": instrument.snapshot(),
            }
            if instrument.kind == "gauge":
                entry["updated_at"] = instrument.updated_at
            out.setdefault(name, []).append(entry)
        return out

    #: Histogram-snapshot keys that describe shape/raw state rather than a
    #: reportable statistic; the text exporter skips them.
    _STRUCTURAL_STATS = frozenset({"buckets", "base", "n_buckets"})

    def export_text(self) -> str:
        """Prometheus-style lines: ``name{k="v"} value`` (one per series,
        histograms flattened to _count/_mean/_max/_p50/_p99/_total)."""
        lines: list[str] = []
        for name, series in self.export().items():
            for entry in series:
                label_text = ",".join(
                    f'{k}="{v}"' for k, v in sorted(entry["labels"].items())
                )
                suffix = f"{{{label_text}}}" if label_text else ""
                value = entry["value"]
                if entry["kind"] == "histogram":
                    for stat, v in value.items():
                        if stat in self._STRUCTURAL_STATS:
                            continue
                        lines.append(f"{name}_{stat}{suffix} {v:g}")
                else:
                    lines.append(f"{name}{suffix} {value:g}")
        return "\n".join(lines)

    def merge(self, exported: dict) -> None:
        """Fold an :meth:`export`-format snapshot into this registry.

        This is how a router combines per-shard (per-process) metric
        snapshots into one fleet-wide view: counters **sum**, gauges keep
        the value with the **newest** ``updated_at`` stamp, and histograms
        **add their log-bucket counts** — so aggregate percentiles (the
        fleet p99) are computed over the union of all samples instead of
        being unmergeable per-server estimates.

        The snapshot must come from a registry at least as new as this
        code (histogram snapshots without raw ``buckets`` are rejected —
        summary stats alone cannot be merged losslessly).
        """
        for name, series in exported.items():
            for entry in series:
                labels = entry.get("labels", {})
                kind = entry.get("kind")
                value = entry.get("value")
                if kind == "counter":
                    self.counter(name, **labels).inc(float(value))
                elif kind == "gauge":
                    gauge = self.gauge(name, **labels)
                    stamp = float(entry.get("updated_at", 0.0))
                    if stamp >= gauge.updated_at:
                        gauge.value = float(value)
                        gauge.updated_at = stamp
                elif kind == "histogram":
                    if "buckets" not in value:
                        raise ValueError(
                            f"histogram snapshot {name!r} has no bucket counts; "
                            "only full snapshots (with 'buckets') can be merged"
                        )
                    hist = self.histogram(
                        name,
                        base=float(value["base"]),
                        n_buckets=int(value["n_buckets"]),
                        **labels,
                    )
                    hist.counts += np.asarray(value["buckets"], dtype=np.int64)
                    hist.total += float(value["total"])
                    if value["max"] > hist.max:
                        hist.max = float(value["max"])
                else:
                    raise ValueError(
                        f"cannot merge metric {name!r} of unknown kind {kind!r}"
                    )

    def export_json(self) -> str:
        return json.dumps(self.export(), indent=2, sort_keys=True)


def registry_from_export(exported: dict) -> MetricsRegistry:
    """Rehydrate an :meth:`MetricsRegistry.export` dict into a registry —
    how the ``/metrics`` endpoint turns a fleet snapshot (already merged,
    already a plain dict) back into ``export_text()`` lines."""
    registry = MetricsRegistry()
    registry.merge(exported)
    return registry


#: The process-wide default registry: build/query/perf instrumentation
#: records here; servers keep their own registries (see ``ServerStats``)
#: so per-server counts stay separable.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return REGISTRY
